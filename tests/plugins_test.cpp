// Tests for the ten data-acquisition plugins, each exercised through its
// Configurator against fixture files, simulated devices or real local
// servers (SNMP over UDP, REST over HTTP).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/clock.hpp"
#include "net/http.hpp"
#include "plugins/devices.hpp"
#include "plugins/procfs_plugin.hpp"
#include "pusher/plugin.hpp"
#include "sim/apps.hpp"
#include "sim/arch.hpp"
#include "sim/gpu.hpp"
#include "sim/snmp_agent.hpp"

namespace dcdb::plugins {
namespace {

namespace fs = std::filesystem;

class PluginsTest : public ::testing::Test {
  protected:
    void SetUp() override {
        register_builtin_plugins();
        DeviceRegistry::instance().clear();
        dir_ = fs::temp_directory_path() /
               ("dcdb_plugins_test_" + std::to_string(::getpid()));
        fs::create_directories(dir_);
        ctx_.topic_prefix = "/test/node0";
    }
    void TearDown() override {
        fs::remove_all(dir_);
        DeviceRegistry::instance().clear();
    }

    std::string write_file(const std::string& name,
                           const std::string& content) {
        const auto path = dir_ / name;
        std::ofstream out(path);
        out << content;
        return path.string();
    }

    /// Configure a plugin and sample all its groups once at t=ts.
    static void sample_all(pusher::Plugin& plugin, TimestampNs ts) {
        for (const auto& group : plugin.groups())
            group->read_all(ts, nullptr);
    }

    static Value latest_value(const pusher::Plugin& plugin,
                              const std::string& sensor_name) {
        for (const auto& group : plugin.groups()) {
            for (const auto& sensor : group->sensors()) {
                if (sensor->name() == sensor_name) {
                    const auto r = sensor->latest();
                    EXPECT_TRUE(r.has_value()) << sensor_name;
                    return r ? r->value : -1;
                }
            }
        }
        ADD_FAILURE() << "no sensor named " << sensor_name;
        return -1;
    }

    fs::path dir_;
    pusher::PluginContext ctx_;
};

// ---------------------------------------------------------------- tester

TEST_F(PluginsTest, TesterCreatesRequestedSensorCount) {
    auto plugin = pusher::PluginRegistry::instance().make("tester");
    plugin->configure(parse_config("group g0 { sensors 123 }"), ctx_);
    EXPECT_EQ(plugin->sensor_count(), 123u);
    sample_all(*plugin, kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "s0"), 0);
    sample_all(*plugin, 2 * kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "s0"), 1);  // incrementing counter
}

TEST_F(PluginsTest, TesterReadCostBurnsCpu) {
    auto plugin = pusher::PluginRegistry::instance().make("tester");
    plugin->configure(
        parse_config("group g0 { sensors 100 ; readCostNs 20000 }"), ctx_);
    const auto start = steady_ns();
    sample_all(*plugin, kNsPerSec);
    EXPECT_GT(steady_ns() - start, 100 * 20000ull * 9 / 10);
}

// ---------------------------------------------------------------- procfs

TEST_F(PluginsTest, ProcfsParsers) {
    const auto mem = parse_meminfo(
        "MemTotal:       196608 kB\nMemFree:  100000 kB\nHugePagesTot: 5\n");
    ASSERT_EQ(mem.size(), 3u);
    EXPECT_EQ(mem[0].first, "MemTotal");
    EXPECT_EQ(mem[0].second, 196608 * 1024);
    EXPECT_EQ(mem[2].second, 5);

    const auto vm = parse_vmstat("pgfault 123\npgmajfault 4\n");
    ASSERT_EQ(vm.size(), 2u);
    EXPECT_EQ(vm[0].first, "pgfault");
    EXPECT_EQ(vm[0].second, 123);

    const auto st = parse_procstat(
        "cpu  10 20 30 40\ncpu0 1 2 3 4 5 6 7\nctxt 999\nbtime 100\n");
    // cpu: 4 cols, cpu0: 7 cols, ctxt: 1 (btime not exported)
    ASSERT_EQ(st.size(), 12u);
    EXPECT_EQ(st[0].first, "cpu.user");
    EXPECT_EQ(st[4].first, "cpu0.user");
    EXPECT_EQ(st[10].first, "cpu0.softirq");
    EXPECT_EQ(st[11].first, "ctxt");
}

TEST_F(PluginsTest, ProcfsPluginAgainstFixture) {
    const auto path = write_file(
        "meminfo", "MemTotal: 1000 kB\nMemFree: 600 kB\nCached: 200 kB\n");
    auto plugin = pusher::PluginRegistry::instance().make("procfs");
    plugin->configure(
        parse_config("group meminfo { file \"" + path + "\" }"), ctx_);
    EXPECT_EQ(plugin->sensor_count(), 3u);
    sample_all(*plugin, kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "MemFree"), 600 * 1024);
}

TEST_F(PluginsTest, ProcfsDeltaForVmstat) {
    const auto path = write_file("vmstat", "pgfault 100\n");
    auto plugin = pusher::PluginRegistry::instance().make("procfs");
    plugin->configure(
        parse_config("group vmstat { file \"" + path + "\" ; type vmstat }"),
        ctx_);
    sample_all(*plugin, kNsPerSec);  // baseline swallowed by delta mode
    write_file("vmstat", "pgfault 175\n");
    sample_all(*plugin, 2 * kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "pgfault"), 75);
}

TEST_F(PluginsTest, ProcfsAgainstRealProcWhenAvailable) {
    if (!fs::exists("/proc/meminfo")) GTEST_SKIP();
    auto plugin = pusher::PluginRegistry::instance().make("procfs");
    plugin->configure(
        parse_config("group meminfo { file /proc/meminfo }"), ctx_);
    EXPECT_GT(plugin->sensor_count(), 10u);
    sample_all(*plugin, kNsPerSec);
    EXPECT_GT(latest_value(*plugin, "MemTotal"), 0);
}

// ----------------------------------------------------------------- sysfs

TEST_F(PluginsTest, SysfsReadsSingleValueFiles) {
    const auto temp_path = write_file("temp0", "45123\n");
    auto plugin = pusher::PluginRegistry::instance().make("sysfs");
    plugin->configure(parse_config("group temps {\n"
                                   "  sensor cpu_temp { path \"" +
                                   temp_path + "\" ; unit mC }\n}"),
                      ctx_);
    sample_all(*plugin, kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "cpu_temp"), 45123);
}

TEST_F(PluginsTest, SysfsEnergyCounterDelta) {
    const auto energy = write_file("energy", "1000000\n");
    auto plugin = pusher::PluginRegistry::instance().make("sysfs");
    plugin->configure(parse_config("group rapl {\n"
                                   "  sensor pkg { path \"" + energy +
                                   "\" ; unit uJ ; delta true }\n}"),
                      ctx_);
    sample_all(*plugin, kNsPerSec);
    write_file("energy", "1250000\n");
    sample_all(*plugin, 2 * kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "pkg"), 250000);
}

// ------------------------------------------------------------ perfevents

TEST_F(PluginsTest, PerfeventsFanOutAndDeltas) {
    DeviceRegistry::instance().add_pmu(
        "pmu0", std::make_shared<sim::PerfCounterModel>(sim::haswell(),
                                                        sim::kripke()));
    auto plugin = pusher::PluginRegistry::instance().make("perfevents");
    plugin->configure(parse_config("device pmu0\n"
                                   "group cpu {\n"
                                   "  counters instructions,cycles\n"
                                   "  cores 0-3\n}"),
                      ctx_);
    EXPECT_EQ(plugin->sensor_count(), 8u);  // 4 cores x 2 counters

    sample_all(*plugin, kNsPerSec);      // baseline
    sample_all(*plugin, 2 * kNsPerSec);  // 1 second of app progress
    const Value instr = latest_value(*plugin, "instructions");
    const Value cycles = latest_value(*plugin, "cycles");
    EXPECT_GT(instr, 0);
    EXPECT_GT(cycles, 0);
    // Kripke is compute-dense: IPC above 1 on the Haswell model.
    EXPECT_GT(static_cast<double>(instr) / static_cast<double>(cycles), 1.0);
}

TEST_F(PluginsTest, PerfeventsMissingDeviceFails) {
    auto plugin = pusher::PluginRegistry::instance().make("perfevents");
    EXPECT_THROW(
        plugin->configure(parse_config("device ghost\ngroup g { }"), ctx_),
        ConfigError);
}

// ------------------------------------------------------------------ ipmi

TEST_F(PluginsTest, IpmiDiscoversSdrSensors) {
    auto bmc = std::make_shared<sim::BmcModel>(1);
    bmc->add_typical_server_sensors();
    DeviceRegistry::instance().add_bmc("bmc0", bmc);

    auto plugin = pusher::PluginRegistry::instance().make("ipmi");
    plugin->configure(parse_config("entity host0 { device bmc0 }\n"
                                   "group board { entity host0 ; "
                                   "discover true }"),
                      ctx_);
    EXPECT_EQ(plugin->sensor_count(), 6u);
    sample_all(*plugin, kNsPerSec);
    // cpu0_temp ~ 58 C published in milli-C.
    const Value temp = latest_value(*plugin, "cpu0_temp");
    EXPECT_NEAR(static_cast<double>(temp), 58000.0, 15000.0);
}

TEST_F(PluginsTest, IpmiExplicitSensorSelection) {
    auto bmc = std::make_shared<sim::BmcModel>(1);
    bmc->add_typical_server_sensors();
    DeviceRegistry::instance().add_bmc("bmc0", bmc);
    auto plugin = pusher::PluginRegistry::instance().make("ipmi");
    plugin->configure(parse_config("entity host0 { device bmc0 }\n"
                                   "group power { entity host0\n"
                                   "  sensor psu { number 5 } }"),
                      ctx_);
    EXPECT_EQ(plugin->sensor_count(), 1u);
    sample_all(*plugin, kNsPerSec);
    EXPECT_NEAR(static_cast<double>(latest_value(*plugin, "psu_power")),
                350000.0, 120000.0);
}

// ------------------------------------------------------------------ snmp

TEST_F(PluginsTest, SnmpGroupReadsOverUdp) {
    sim::SnmpAgentSim agent("public");
    std::int64_t watts = 2500;
    agent.register_oid("1.3.6.1.4.1.1000.1", [&] { return watts; });
    agent.register_oid("1.3.6.1.4.1.1000.2", [] { return std::int64_t{40}; });

    auto plugin = pusher::PluginRegistry::instance().make("snmp");
    plugin->configure(
        parse_config("entity agent0 { port " +
                     std::to_string(agent.port()) +
                     " ; community public }\n"
                     "group pdu { entity agent0\n"
                     "  sensor power { oid 1.3.6.1.4.1.1000.1 ; unit W }\n"
                     "  sensor temp  { oid 1.3.6.1.4.1.1000.2 ; unit C }\n}"),
        ctx_);
    sample_all(*plugin, kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "power"), 2500);
    EXPECT_EQ(latest_value(*plugin, "temp"), 40);

    watts = 2600;
    sample_all(*plugin, 2 * kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "power"), 2600);
}

TEST_F(PluginsTest, SnmpWrongCommunitySkipsCycle) {
    sim::SnmpAgentSim agent("secret");
    agent.register_oid("1.3.6.1.4.1.1000.1", [] { return std::int64_t{1}; });
    auto plugin = pusher::PluginRegistry::instance().make("snmp");
    plugin->configure(
        parse_config("entity agent0 { port " +
                     std::to_string(agent.port()) +
                     " ; community wrong }\n"
                     "group g { entity agent0\n"
                     "  sensor v { oid 1.3.6.1.4.1.1000.1 } }"),
        ctx_);
    sample_all(*plugin, kNsPerSec);
    // Group read fails -> no reading stored, no crash.
    EXPECT_FALSE(
        plugin->groups()[0]->sensors()[0]->latest().has_value());
}

// ---------------------------------------------------------------- bacnet

TEST_F(PluginsTest, BacnetReadsPresentValues) {
    auto bms = std::make_shared<sim::BacnetDeviceSim>();
    bms->add_object(101, "chiller_inlet", [] { return 17.5; });
    DeviceRegistry::instance().add_bacnet("bms0", bms);

    auto plugin = pusher::PluginRegistry::instance().make("bacnet");
    plugin->configure(parse_config("entity bms { device bms0 }\n"
                                   "group chillers { entity bms\n"
                                   "  sensor inlet { instance 101 } }"),
                      ctx_);
    sample_all(*plugin, kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "inlet"), 17500);  // milli-units
}

// ------------------------------------------------------------------ rest

TEST_F(PluginsTest, RestPluginSamplesHttpEndpoint) {
    std::atomic<double> value{12.25};
    HttpServer server(0, [&](const HttpRequest& req) {
        if (req.path == "/flow")
            return HttpResponse::ok(std::to_string(value.load()));
        return HttpResponse::not_found();
    });

    auto plugin = pusher::PluginRegistry::instance().make("rest");
    plugin->configure(
        parse_config("entity cooling { host 127.0.0.1 ; port " +
                     std::to_string(server.port()) +
                     " }\n"
                     "group loop { entity cooling\n"
                     "  sensor flow { path /flow ; unit \"l/s\" } }"),
        ctx_);
    sample_all(*plugin, kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "flow"), 12250);
    value.store(13.5);
    sample_all(*plugin, 2 * kNsPerSec);
    EXPECT_EQ(latest_value(*plugin, "flow"), 13500);
}

// ------------------------------------------------------------- gpfs, opa

TEST_F(PluginsTest, GpfsPublishesIoDeltas) {
    DeviceRegistry::instance().add_fs(
        "fs0", std::make_shared<sim::FsStatsModel>(1));
    auto plugin = pusher::PluginRegistry::instance().make("gpfs");
    plugin->configure(parse_config("device fs0\ngroup io { }"), ctx_);
    EXPECT_EQ(plugin->sensor_count(), 6u);
    sample_all(*plugin, kNsPerSec);
    sample_all(*plugin, 3 * kNsPerSec);
    EXPECT_GT(latest_value(*plugin, "write_bytes"), 0);
}

TEST_F(PluginsTest, OpaPublishesPortCounterDeltas) {
    DeviceRegistry::instance().add_fabric(
        "hfi0", std::make_shared<sim::FabricPortModel>(sim::amg()));
    auto plugin = pusher::PluginRegistry::instance().make("opa");
    plugin->configure(parse_config("device hfi0\ngroup port0 { }"), ctx_);
    EXPECT_EQ(plugin->sensor_count(), 5u);
    sample_all(*plugin, kNsPerSec);
    sample_all(*plugin, 3 * kNsPerSec);
    EXPECT_GT(latest_value(*plugin, "xmit_data"), 0);
    EXPECT_GT(latest_value(*plugin, "xmit_pkts"), 0);
}

// ------------------------------------------------------------------- gpu

TEST_F(PluginsTest, GpuPluginFansOutPerDeviceMetrics) {
    DeviceRegistry::instance().add_gpu(
        "gpus0", std::make_shared<sim::GpuDeviceModel>(2, 7));
    auto plugin = pusher::PluginRegistry::instance().make("gpu");
    plugin->configure(parse_config("device gpus0\ngroup gpus { }"), ctx_);
    EXPECT_EQ(plugin->sensor_count(), 10u);  // 2 devices x 5 metrics
    sample_all(*plugin, kNsPerSec);
    sample_all(*plugin, 5 * kNsPerSec);
    const Value power_mw = latest_value(*plugin, "power");
    EXPECT_GT(power_mw, 20000);   // > 20 W in milliwatts
    EXPECT_LT(power_mw, 450000);
    const Value util = latest_value(*plugin, "utilization");
    EXPECT_GE(util, 0);
    EXPECT_LE(util, 100);
}

TEST_F(PluginsTest, GpuPluginMissingDeviceFails) {
    auto plugin = pusher::PluginRegistry::instance().make("gpu");
    EXPECT_THROW(
        plugin->configure(parse_config("device nope\ngroup g { }"), ctx_),
        ConfigError);
}

// -------------------------------------------------------------- registry

TEST_F(PluginsTest, RegistryListsAllTenPlugins) {
    const auto available = pusher::PluginRegistry::instance().available();
    EXPECT_GE(available.size(), 10u);
    for (const char* name :
         {"tester", "procfs", "sysfs", "perfevents", "ipmi", "snmp",
          "bacnet", "rest", "gpfs", "opa", "gpu"}) {
        EXPECT_NE(std::find(available.begin(), available.end(), name),
                  available.end())
            << name;
    }
}

}  // namespace
}  // namespace dcdb::plugins
