// Tests for the simulation substrate: architecture models, the HPL
// analog, app models, the cluster DES, device models and their protocol
// codecs (IPMI, SNMP/BER, BACnet).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/apps.hpp"
#include "sim/arch.hpp"
#include "sim/bacnet_device.hpp"
#include "sim/bmc.hpp"
#include "sim/cluster_des.hpp"
#include "sim/cooling.hpp"
#include "sim/fabric.hpp"
#include "sim/fs_stats.hpp"
#include "sim/gpu.hpp"
#include "sim/hpl.hpp"
#include "sim/pdu.hpp"
#include "sim/perf_counters.hpp"
#include "sim/power.hpp"
#include "sim/snmp_agent.hpp"

namespace dcdb::sim {
namespace {

// ------------------------------------------------------------------ arch

TEST(Arch, Table1Configurations) {
    const auto sky = skylake();
    EXPECT_EQ(sky.hardware_threads(), 96);   // 2 x 24 x 2
    EXPECT_EQ(sky.production_sensors, 2477);
    const auto has = haswell();
    EXPECT_EQ(has.hardware_threads(), 28);   // 2 x 14
    const auto knl = knights_landing();
    EXPECT_EQ(knl.hardware_threads(), 256);  // 64 x 4
    EXPECT_GT(knl.read_cost_factor(), sky.read_cost_factor())
        << "KNL's weak single-thread perf must cost more per read";
    EXPECT_THROW(arch_by_name("epyc"), Error);
}

// ------------------------------------------------------------------- hpl

TEST(Hpl, FixedWorkIsReproduciblyTimed) {
    HplAnalog hpl(2, 96);
    hpl.set_repetitions(2);
    const auto r1 = hpl.run();
    EXPECT_GT(r1.seconds, 0.0);
    EXPECT_GT(r1.gflops, 0.01);
}

TEST(Hpl, CalibrationHitsTargetDuration) {
    HplAnalog hpl(2, 96);
    hpl.calibrate(0.3);
    const auto r = hpl.run();
    EXPECT_GT(r.seconds, 0.05);
    EXPECT_LT(r.seconds, 2.0);
}

TEST(Hpl, MoreWorkTakesLonger) {
    HplAnalog hpl(2, 96);
    hpl.set_repetitions(1);
    const double t1 = hpl.run().seconds;
    hpl.set_repetitions(4);
    const double t4 = hpl.run().seconds;
    EXPECT_GT(t4, 2.0 * t1);
}

// ------------------------------------------------------------------ apps

TEST(Apps, AllFourCoral2ModelsExist) {
    EXPECT_EQ(coral2_apps().size(), 4u);
    EXPECT_NO_THROW(app_by_name("amg"));
    EXPECT_NO_THROW(app_by_name("lammps"));
    EXPECT_NO_THROW(app_by_name("kripke"));
    EXPECT_NO_THROW(app_by_name("quicksilver"));
    EXPECT_THROW(app_by_name("hpcg"), Error);
}

TEST(Apps, AmgIsTheCommunicationHeavyOutlier) {
    const auto a = amg();
    for (const auto& other : {quicksilver(), lammps(), kripke()}) {
        EXPECT_GT(a.comm_fraction, 2 * other.comm_fraction);
        EXPECT_GT(a.net_sensitivity, 2 * other.net_sensitivity);
    }
}

TEST(Apps, PhaseCyclingIsPeriodic) {
    const auto app = lammps();
    const double cycle = app.cycle_length_s();
    EXPECT_GT(cycle, 0.0);
    EXPECT_EQ(&app.phase_at(0.1), &app.phase_at(0.1 + cycle));
    // Second phase reached after the first's duration.
    EXPECT_NE(app.phase_at(0.0).ipc,
              app.phase_at(app.phases[0].duration_s + 0.01).ipc);
}

TEST(Apps, ComputeDensityOrdering) {
    // Kripke/Quicksilver dense; AMG low IPC (paper, Figure 10).
    const auto peak_ipc = [](const AppModel& m) {
        double best = 0;
        for (const auto& p : m.phases) best = std::max(best, p.ipc);
        return best;
    };
    EXPECT_GT(peak_ipc(kripke()), peak_ipc(lammps()));
    EXPECT_GT(peak_ipc(quicksilver()), peak_ipc(amg()));
}

// ------------------------------------------------------------------- DES

TEST(Des, UnmonitoredReferenceIsDeterministic) {
    ClusterDes des(amg(), 64, 7);
    const auto a = des.run(MonitoringConfig{});
    const auto b = des.run(MonitoringConfig{});
    EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
}

TEST(Des, MonitoringAddsOverhead) {
    ClusterDes des(amg(), 128, 7);
    MonitoringConfig mon;
    mon.sensors = 2477;
    mon.interval_s = 1.0;
    EXPECT_GT(des.overhead_percent(mon), 0.0);
}

TEST(Des, AmgOverheadGrowsWithNodeCount) {
    MonitoringConfig mon;
    mon.sensors = 2477;
    mon.interval_s = 1.0;
    const double o128 = ClusterDes(amg(), 128, 7).overhead_percent(mon);
    const double o1024 = ClusterDes(amg(), 1024, 7).overhead_percent(mon);
    EXPECT_GT(o1024, 1.5 * o128)
        << "AMG's interference must grow with scale (paper Fig. 4)";
}

TEST(Des, ComputeBoundAppsStayFlatWithScale) {
    MonitoringConfig mon;
    mon.sensors = 2477;
    mon.interval_s = 1.0;
    const double o128 = ClusterDes(kripke(), 128, 7).overhead_percent(mon);
    const double o1024 = ClusterDes(kripke(), 1024, 7).overhead_percent(mon);
    EXPECT_LT(o1024, 3.0);
    EXPECT_LT(o1024 - o128, 2.0);
}

TEST(Des, AmgDominatedByNetworkNotPluginCost) {
    // "core" config (tester plugin, ~free reads) vs "total" config: for
    // AMG the network term dominates, so both are close (paper Fig. 4).
    MonitoringConfig total;
    total.sensors = 2477;
    total.per_read_cost_us = 7.0;
    MonitoringConfig core = total;
    core.per_read_cost_us = 0.5;
    ClusterDes des(amg(), 512, 7);
    const double o_total = des.overhead_percent(total);
    const double o_core = des.overhead_percent(core);
    EXPECT_GT(o_core, 0.5 * o_total);
}

TEST(Des, BurstModeHelpsAmg) {
    MonitoringConfig continuous;
    continuous.sensors = 2477;
    MonitoringConfig burst = continuous;
    burst.burst_mode = true;
    ClusterDes des(amg(), 512, 7);
    EXPECT_LT(des.overhead_percent(burst),
              des.overhead_percent(continuous))
        << "paper: AMG performs best with twice-per-minute bursts";
}

TEST(Des, MoreSensorsMoreOverhead) {
    ClusterDes des(amg(), 256, 7);
    MonitoringConfig small, large;
    small.sensors = 100;
    large.sensors = 10000;
    EXPECT_GT(des.overhead_percent(large), des.overhead_percent(small));
}

// ----------------------------------------------------------------- power

TEST(Power, WithinEnvelopeAndPhaseCorrelated) {
    const auto arch = skylake();
    NodePowerModel power(arch, kripke(), 3);
    double lo = 1e9, hi = 0;
    for (double t = 0; t < 60; t += 0.1) {
        const double p = power.power_w(t);
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    EXPECT_GT(lo, 50.0);
    EXPECT_LT(hi, 600.0);
    EXPECT_GT(hi, lo);
}

// --------------------------------------------------------- perf counters

TEST(PerfCounters, MonotonicAccumulation) {
    PerfCounterModel pmu(haswell(), kripke());
    pmu.advance_to(1.0);
    const auto a = pmu.core(0);
    pmu.advance_to(2.0);
    const auto b = pmu.core(0);
    EXPECT_GT(b.instructions, a.instructions);
    EXPECT_GT(b.cycles, a.cycles);
    EXPECT_GE(b.cache_misses, a.cache_misses);
}

TEST(PerfCounters, BackwardAdvanceIsIgnored) {
    PerfCounterModel pmu(haswell(), kripke());
    pmu.advance_to(1.0);
    const auto a = pmu.core(0);
    pmu.advance_to(0.5);
    EXPECT_EQ(pmu.core(0).instructions, a.instructions);
}

TEST(PerfCounters, IpcReflectsAppDensity) {
    PerfCounterModel dense(skylake(), kripke(), 1);
    PerfCounterModel sparse(skylake(), amg(), 1);
    dense.advance_to(10.0);
    sparse.advance_to(10.0);
    const double ipc_dense =
        static_cast<double>(dense.core(0).instructions) /
        static_cast<double>(dense.core(0).cycles);
    const double ipc_sparse =
        static_cast<double>(sparse.core(0).instructions) /
        static_cast<double>(sparse.core(0).cycles);
    EXPECT_GT(ipc_dense, 1.5 * ipc_sparse);
}

TEST(PerfCounters, CoreCountMatchesArchitecture) {
    PerfCounterModel pmu(knights_landing(), amg());
    EXPECT_EQ(pmu.core_count(), 256u);
}

// --------------------------------------------------------------- cooling

TEST(Cooling, EfficiencyNearNinetyPercent) {
    CoolingLoopModel loop;
    std::vector<double> efficiencies;
    for (double t = 0; t < 25 * 3600; t += 600) {
        loop.advance_to(t);
        efficiencies.push_back(loop.true_efficiency());
    }
    double sum = 0;
    for (const double e : efficiencies) sum += e;
    const double avg = sum / static_cast<double>(efficiencies.size());
    EXPECT_NEAR(avg, 0.90, 0.02);
}

TEST(Cooling, EfficiencyIndependentOfInletTemperature) {
    // The case study's finding: rising inlet temperature does not widen
    // the gap between power and heat removed.
    CoolingLoopModel loop;
    std::vector<double> early, late;
    for (double t = 0; t < 4 * 3600; t += 300) {
        loop.advance_to(t);
        early.push_back(loop.true_efficiency());
    }
    for (double t = 21 * 3600; t < 25 * 3600; t += 300) {
        loop.advance_to(t);
        late.push_back(loop.true_efficiency());
    }
    const auto avg = [](const std::vector<double>& v) {
        double s = 0;
        for (const double x : v) s += x;
        return s / static_cast<double>(v.size());
    };
    EXPECT_NEAR(avg(early), avg(late), 0.03);
}

TEST(Cooling, HeatBalanceConsistent) {
    // Q = flow * cp * (T_out - T_in) must reproduce the true heat flux
    // from the raw sensors alone (what the virtual sensor computes).
    CoolingLoopModel loop;
    loop.advance_to(3600);
    const double q_from_sensors = loop.flow_ls() * 4186.0 *
                                  (loop.outlet_temp_c() - loop.inlet_temp_c());
    EXPECT_NEAR(q_from_sensors, loop.true_heat_removed_w(),
                loop.true_heat_removed_w() * 0.01);
}

TEST(Cooling, InletSweepsUpward) {
    CoolingLoopModel loop;
    loop.advance_to(60);
    const double early = loop.inlet_temp_c();
    loop.advance_to(24.9 * 3600);
    EXPECT_GT(loop.inlet_temp_c(), early + 10.0);
}

TEST(Cooling, PowerStaysInBand) {
    CoolingLoopModel loop;
    for (double t = 0; t < 25 * 3600; t += 900) {
        loop.advance_to(t);
        EXPECT_GT(loop.true_total_power_w(), 3000.0);
        EXPECT_LT(loop.true_total_power_w(), 40000.0);
    }
}

// ------------------------------------------------------------------- BMC

TEST(Bmc, GetSensorReadingRoundTrip) {
    BmcModel bmc(1);
    bmc.add_typical_server_sensors();
    const std::uint8_t req[] = {kIpmiNetFnSensor, kIpmiCmdGetSensorReading, 1};
    const auto resp = bmc.handle(req);
    ASSERT_GE(resp.size(), 2u);
    EXPECT_EQ(resp[0], kIpmiCompletionOk);
    // Convert raw back with the SDR factors: value = M*raw + B.
    const auto sdrs = bmc.sdr_repository();
    const auto& sdr = sdrs[0];
    const double value = sdr.m * resp[1] + sdr.b;
    EXPECT_NEAR(value, bmc.value_of(1), sdr.m);  // quantization <= 1 raw
}

TEST(Bmc, UnknownSensorAndCommandRejected) {
    BmcModel bmc(1);
    bmc.add_typical_server_sensors();
    const std::uint8_t bad_sensor[] = {kIpmiNetFnSensor,
                                       kIpmiCmdGetSensorReading, 99};
    EXPECT_EQ(bmc.handle(bad_sensor)[0], kIpmiCompletionInvalidSensor);
    const std::uint8_t bad_cmd[] = {kIpmiNetFnSensor, 0x77, 1};
    EXPECT_EQ(bmc.handle(bad_cmd)[0], kIpmiCompletionInvalidCmd);
    const std::uint8_t bad_netfn[] = {0x06, kIpmiCmdGetSensorReading, 1};
    EXPECT_EQ(bmc.handle(bad_netfn)[0], kIpmiCompletionInvalidCmd);
}

TEST(Bmc, ValuesEvolveWithTicks) {
    BmcModel bmc(1);
    bmc.add_typical_server_sensors();
    const double before = bmc.value_of(1);
    for (int i = 0; i < 50; ++i) bmc.tick(1.0);
    EXPECT_NE(bmc.value_of(1), before);
    EXPECT_NEAR(bmc.value_of(1), 58.0, 15.0);  // mean-reverting
}

TEST(Bmc, SdrRepositoryListsAllSensors) {
    BmcModel bmc(1);
    bmc.add_typical_server_sensors();
    EXPECT_EQ(bmc.sdr_repository().size(), 6u);
}

// ------------------------------------------------------------------ SNMP

TEST(Snmp, OidParseAndPrint) {
    const Oid oid = parse_oid("1.3.6.1.4.1.1000.7");
    EXPECT_EQ(oid.size(), 8u);
    EXPECT_EQ(oid_to_string(oid), "1.3.6.1.4.1.1000.7");
    EXPECT_THROW(parse_oid("not.an.oid"), Error);
    EXPECT_THROW(parse_oid("1"), Error);
}

TEST(Snmp, BerMessageRoundTrip) {
    SnmpMessage msg;
    msg.community = "dcdb";
    msg.pdu_type = 0xA0;
    msg.request_id = 12345;
    SnmpVarBind vb;
    vb.oid = parse_oid("1.3.6.1.4.1.1000.1");
    msg.varbinds.push_back(vb);
    SnmpVarBind vb2;
    vb2.oid = parse_oid("1.3.6.1.2.1.1.3.0");
    vb2.value = -987654321;  // exercises signed integer encoding
    vb2.is_null = false;
    msg.varbinds.push_back(vb2);

    const auto decoded = snmp_decode(snmp_encode(msg));
    EXPECT_EQ(decoded.community, "dcdb");
    EXPECT_EQ(decoded.request_id, 12345);
    ASSERT_EQ(decoded.varbinds.size(), 2u);
    EXPECT_TRUE(decoded.varbinds[0].is_null);
    EXPECT_EQ(decoded.varbinds[1].value, -987654321);
    EXPECT_EQ(oid_to_string(decoded.varbinds[1].oid), "1.3.6.1.2.1.1.3.0");
}

TEST(Snmp, BerRejectsGarbage) {
    const std::vector<std::uint8_t> junk = {0x13, 0x37, 0xFF};
    EXPECT_THROW(snmp_decode(junk), ProtocolError);
}

TEST(Snmp, AgentServesGetOverUdp) {
    SnmpAgentSim agent("public");
    std::int64_t temperature = 42;
    agent.register_oid("1.3.6.1.4.1.1000.1", [&] { return temperature; });
    agent.register_oid("1.3.6.1.4.1.1000.2", [] { return std::int64_t{7}; });

    const auto values = snmp_get(agent.port(), "public",
                                 {"1.3.6.1.4.1.1000.1",
                                  "1.3.6.1.4.1.1000.2"});
    ASSERT_TRUE(values.has_value());
    ASSERT_EQ(values->size(), 2u);
    EXPECT_EQ((*values)[0], 42);
    EXPECT_EQ((*values)[1], 7);

    temperature = 43;
    const auto again =
        snmp_get(agent.port(), "public", {"1.3.6.1.4.1.1000.1"});
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ((*again)[0], 43);
    EXPECT_EQ(agent.requests_served(), 2u);
}

TEST(Snmp, AgentRejectsWrongCommunityAndUnknownOid) {
    SnmpAgentSim agent("secret");
    agent.register_oid("1.3.6.1.4.1.1000.1", [] { return std::int64_t{1}; });
    EXPECT_FALSE(
        snmp_get(agent.port(), "public", {"1.3.6.1.4.1.1000.1"}, 300)
            .has_value());
    EXPECT_FALSE(
        snmp_get(agent.port(), "secret", {"1.3.6.1.4.1.9.9.9"}, 300)
            .has_value());
}

// ---------------------------------------------------------------- BACnet

TEST(Bacnet, ReadPropertyRoundTrip) {
    BacnetDeviceSim device;
    device.add_object(101, "chiller_inlet", [] { return 17.25; });
    const auto resp = device.handle(bacnet_read_request(101));
    double value = 0;
    ASSERT_TRUE(bacnet_parse_response(resp, value));
    EXPECT_NEAR(value, 17.25, 1e-3);
}

TEST(Bacnet, UnknownObjectFails) {
    BacnetDeviceSim device;
    const auto resp = device.handle(bacnet_read_request(5));
    double value = 0;
    EXPECT_FALSE(bacnet_parse_response(resp, value));
    EXPECT_EQ(resp[0], kBacnetStatusUnknownObject);
}

// ---------------------------------------------------------- fabric & fs

TEST(Fabric, CountersMonotonicAndCommScaled) {
    FabricPortModel busy(amg(), 12.5, 1);
    FabricPortModel quiet(kripke(), 12.5, 1);
    busy.advance_to(10.0);
    quiet.advance_to(10.0);
    EXPECT_GT(busy.counters().xmit_data_bytes, 0u);
    // AMG sends smaller packets: more packets per byte.
    const double busy_ratio =
        static_cast<double>(busy.counters().xmit_packets) /
        static_cast<double>(busy.counters().xmit_data_bytes);
    const double quiet_ratio =
        static_cast<double>(quiet.counters().xmit_packets) /
        static_cast<double>(quiet.counters().xmit_data_bytes);
    EXPECT_GT(busy_ratio, 5 * quiet_ratio);
}

TEST(FsStats, CheckpointBurstsDominateWrites) {
    FsStatsModel fs(1, 60.0);
    fs.advance_to(120.0);  // two checkpoint periods
    const auto c = fs.counters();
    EXPECT_GT(c.write_bytes, c.read_bytes);
    EXPECT_GT(c.writes, 0u);
    EXPECT_GT(c.opens, 0u);
}

// ------------------------------------------------------------------- GPU

TEST(Gpu, SamplesWithinPhysicalEnvelope) {
    GpuDeviceModel gpus(4, 1);
    for (double t = 1; t < 120; t += 1.0) {
        gpus.advance_to(t);
        for (int d = 0; d < gpus.device_count(); ++d) {
            const auto s = gpus.sample(d);
            EXPECT_GE(s.utilization_pct, 0.0);
            EXPECT_LE(s.utilization_pct, 100.0);
            EXPECT_GE(s.memory_used_mb, 0.0);
            EXPECT_LE(s.memory_used_mb, gpus.memory_total_mb());
            EXPECT_GT(s.power_w, 20.0);
            EXPECT_LT(s.power_w, 450.0);
            EXPECT_GT(s.sm_clock_mhz, 700.0);
            EXPECT_LT(s.sm_clock_mhz, 1800.0);
        }
    }
}

TEST(Gpu, TemperatureTracksUtilizationWithLag) {
    GpuDeviceModel gpus(1, 2);
    gpus.advance_to(0.1);
    const double cold = gpus.sample(0).temperature_c;
    for (double t = 1; t <= 300; t += 1.0) gpus.advance_to(t);
    const auto hot = gpus.sample(0);
    // After minutes at ~70% mean utilization the die is far above start.
    EXPECT_GT(hot.temperature_c, cold + 10.0);
    EXPECT_LT(hot.temperature_c, 90.0);
}

TEST(Gpu, DevicesEvolveIndependently) {
    GpuDeviceModel gpus(2, 3);
    for (double t = 1; t <= 60; t += 1.0) gpus.advance_to(t);
    EXPECT_NE(gpus.sample(0).utilization_pct,
              gpus.sample(1).utilization_pct);
}

// ------------------------------------------------------------------- PDU

TEST(Pdu, EnergyIntegratesPower) {
    PduModel pdu(8, 250.0, 1);
    pdu.advance_to(3600.0);  // one hour
    // 8 outlets x ~250 W x 1 h ~ 2000 Wh.
    EXPECT_NEAR(pdu.energy_wh(), 2000.0, 400.0);
    EXPECT_NEAR(pdu.total_power_w(), 2000.0, 400.0);
    EXPECT_GT(pdu.outlet_power_w(0), 0.0);
}

}  // namespace
}  // namespace dcdb::sim
