// Property-based tests: randomized workloads checked against reference
// models, parameterized over seeds (TEST_P / INSTANTIATE_TEST_SUITE_P).
// These hunt for invariant violations that example-based tests miss.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "core/payload.hpp"
#include "core/sensor_cache.hpp"
#include "core/sensor_id.hpp"
#include "libdcdb/expression.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/topic.hpp"
#include "store/node.hpp"
#include "store/tsblock.hpp"
#include "telemetry/trace.hpp"

namespace dcdb {
namespace {

namespace fs = std::filesystem;

class Seeded : public ::testing::TestWithParam<std::uint64_t> {
  protected:
    std::uint64_t seed() const { return GetParam(); }
};

// =============================================================== storage

class StoreProperty : public Seeded {};

// The storage node must behave exactly like a map<ts, value> per key,
// regardless of how inserts interleave with flushes, compactions and
// restarts.
TEST_P(StoreProperty, RandomWorkloadMatchesReferenceModel) {
    const auto dir = fs::temp_directory_path() /
                     ("dcdb_prop_store_" + std::to_string(::getpid()) + "_" +
                      std::to_string(seed()));
    fs::remove_all(dir);
    fs::create_directories(dir);

    Rng rng(seed());
    using Model = std::map<store::Key, std::map<TimestampNs, Value>>;
    Model model;

    auto random_key = [&rng] {
        store::Key k;
        k.sid[0] = static_cast<std::uint8_t>(rng.below(4));  // few partitions
        k.bucket = static_cast<std::uint32_t>(rng.below(2));
        return k;
    };

    auto node = std::make_unique<store::StorageNode>(
        store::NodeConfig{dir.string(), 16u << 10, true});

    for (int op = 0; op < 2000; ++op) {
        const double dice = rng.uniform();
        if (dice < 0.80) {
            const store::Key key = random_key();
            const TimestampNs ts = 1 + rng.below(500);
            const Value value = static_cast<Value>(rng.next_u64() % 1000);
            node->insert(key, ts, value);
            model[key][ts] = value;
        } else if (dice < 0.88) {
            node->flush();
        } else if (dice < 0.93) {
            node->compact();
        } else {
            // Crash-free restart: everything must survive via commit log
            // and SSTables.
            node.reset();
            node = std::make_unique<store::StorageNode>(
                store::NodeConfig{dir.string(), 16u << 10, true});
        }

        // Spot-check a random range query against the model.
        if (op % 97 == 0) {
            const store::Key key = random_key();
            TimestampNs lo = rng.below(500), hi = rng.below(500);
            if (lo > hi) std::swap(lo, hi);
            const auto got = node->query(key, lo, hi);
            std::vector<std::pair<TimestampNs, Value>> expect;
            for (const auto& [ts, v] : model[key]) {
                if (ts >= lo && ts <= hi) expect.emplace_back(ts, v);
            }
            ASSERT_EQ(got.size(), expect.size())
                << "op " << op << " range [" << lo << "," << hi << "]";
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].ts, expect[i].first);
                EXPECT_EQ(got[i].value, expect[i].second);
            }
        }
    }

    // Final full verification of every partition.
    for (const auto& [key, rows] : model) {
        const auto got = node->query(key, 0, kTimestampMax);
        ASSERT_EQ(got.size(), rows.size());
        auto it = rows.begin();
        for (const auto& row : got) {
            EXPECT_EQ(row.ts, it->first);
            EXPECT_EQ(row.value, it->second);
            ++it;
        }
    }
    node.reset();
    fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ================================================================== MQTT

class MqttCodecProperty : public Seeded {};

mqtt::Packet random_packet(Rng& rng) {
    switch (rng.below(6)) {
        case 0: {
            mqtt::Connect c;
            c.client_id = "client" + std::to_string(rng.below(100000));
            c.keepalive_s = static_cast<std::uint16_t>(rng.below(65536));
            c.clean_session = rng.below(2) == 0;
            return c;
        }
        case 1: {
            mqtt::Publish p;
            const int levels = 1 + static_cast<int>(rng.below(7));
            for (int i = 0; i < levels; ++i)
                p.topic += "/l" + std::to_string(rng.below(50));
            p.qos = static_cast<std::uint8_t>(rng.below(2));
            if (p.qos)
                p.packet_id =
                    static_cast<std::uint16_t>(1 + rng.below(65535));
            p.retain = rng.below(2) == 0;
            const std::size_t n = rng.below(300);
            p.payload.resize(n);
            for (auto& b : p.payload)
                b = static_cast<std::uint8_t>(rng.below(256));
            return p;
        }
        case 2:
            return mqtt::Puback{
                static_cast<std::uint16_t>(1 + rng.below(65535))};
        case 3: {
            mqtt::Subscribe s;
            s.packet_id = static_cast<std::uint16_t>(1 + rng.below(65535));
            const int n = 1 + static_cast<int>(rng.below(4));
            for (int i = 0; i < n; ++i)
                s.filters.emplace_back("/f" + std::to_string(rng.below(50)) +
                                           (rng.below(2) ? "/#" : "/+"),
                                       static_cast<std::uint8_t>(rng.below(2)));
            return s;
        }
        case 4: {
            mqtt::Suback s;
            s.packet_id = static_cast<std::uint16_t>(1 + rng.below(65535));
            const int n = 1 + static_cast<int>(rng.below(4));
            for (int i = 0; i < n; ++i)
                s.return_codes.push_back(rng.below(2) ? 0x00 : 0x80);
            return s;
        }
        default:
            return mqtt::Pingreq{};
    }
}

TEST_P(MqttCodecProperty, EncodeDecodeRoundTripsArbitraryPackets) {
    Rng rng(seed());
    for (int i = 0; i < 500; ++i) {
        const mqtt::Packet original = random_packet(rng);
        const auto bytes = mqtt::encode(original);
        ByteReader r(bytes);
        const std::uint8_t first = r.u8();
        const std::uint32_t remaining = r.varint();
        ASSERT_EQ(r.remaining(), remaining) << "length field must be exact";
        const mqtt::Packet decoded = mqtt::decode(first, r.bytes(remaining));
        ASSERT_EQ(mqtt::packet_type(decoded), mqtt::packet_type(original));
        if (const auto* p = std::get_if<mqtt::Publish>(&original)) {
            const auto& q = std::get<mqtt::Publish>(decoded);
            EXPECT_EQ(q.topic, p->topic);
            EXPECT_EQ(q.payload, p->payload);
            EXPECT_EQ(q.qos, p->qos);
            EXPECT_EQ(q.retain, p->retain);
            if (p->qos) {
                EXPECT_EQ(q.packet_id, p->packet_id);
            }
        }
    }
}

TEST_P(MqttCodecProperty, DecoderNeverCrashesOnFuzzedBytes) {
    Rng rng(seed() * 31 + 7);
    for (int i = 0; i < 3000; ++i) {
        std::vector<std::uint8_t> junk(rng.below(64));
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
        const std::uint8_t first = static_cast<std::uint8_t>(rng.below(256));
        try {
            (void)mqtt::decode(first, junk);
        } catch (const ProtocolError&) {
            // Rejecting malformed input is the expected outcome.
        }
    }
    SUCCEED();
}

TEST_P(MqttCodecProperty, TopicMatchReflexiveAndHashSupersetOfPlus) {
    Rng rng(seed() * 131 + 3);
    for (int i = 0; i < 300; ++i) {
        std::string topic;
        const int levels = 1 + static_cast<int>(rng.below(6));
        for (int l = 0; l < levels; ++l)
            topic += "/t" + std::to_string(rng.below(9));
        // Every valid topic matches itself.
        EXPECT_TRUE(topic_matches(topic, topic));
        // Replacing any one level with '+' still matches.
        auto parts = topic_levels(topic);
        const std::size_t idx = 1 + rng.below(parts.size() - 1);
        parts[idx] = "+";
        std::string plus;
        for (std::size_t l = 1; l < parts.size(); ++l) plus += "/" + parts[l];
        EXPECT_TRUE(topic_matches(plus, topic)) << plus << " vs " << topic;
        // Truncating at any level and appending '#' matches.
        std::string hash;
        for (std::size_t l = 1; l <= idx; ++l) hash += "/" + parts[l] ;
        hash = hash.substr(0, hash.rfind('/')) + "/#";
        EXPECT_TRUE(topic_matches(hash, topic)) << hash << " vs " << topic;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MqttCodecProperty,
                         ::testing::Values(11, 12, 13, 14));

// ========================================================== sensor cache

class CacheProperty : public Seeded {};

TEST_P(CacheProperty, MatchesReferenceDequeSemantics) {
    Rng rng(seed());
    SensorCache cache(50 * kNsPerSec, kNsPerSec);
    std::vector<Reading> reference;  // all readings ever pushed, in order

    TimestampNs ts = 0;
    for (int i = 0; i < 3000; ++i) {
        ts += 1 + rng.below(3 * kNsPerSec);
        const Reading r{ts, static_cast<Value>(rng.next_u64() % 100000)};
        cache.push(r);
        reference.push_back(r);

        ASSERT_TRUE(cache.latest().has_value());
        EXPECT_EQ(*cache.latest(), reference.back());

        if (i % 53 == 0) {
            // Every reading within the window must be present.
            const TimestampNs cutoff =
                ts >= 50 * kNsPerSec ? ts - 50 * kNsPerSec : 0;
            const auto view = cache.view(cutoff, ts);
            std::vector<Reading> expect;
            for (const auto& x : reference) {
                if (x.ts >= cutoff) expect.push_back(x);
            }
            ASSERT_EQ(view.size(), expect.size()) << "at push " << i;
            EXPECT_EQ(view, expect);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperty,
                         ::testing::Values(21, 22, 23, 24));

// =========================================================== expressions

class ExpressionProperty : public Seeded {};

lib::ExprPtr random_expr(Rng& rng, int depth) {
    auto node = std::make_unique<lib::ExprNode>();
    if (depth <= 0 || rng.below(3) == 0) {
        if (rng.below(2) == 0) {
            node->kind = lib::ExprNode::Kind::kNumber;
            node->number = rng.uniform(-100.0, 100.0);
        } else {
            node->kind = lib::ExprNode::Kind::kSensor;
            node->name = "/s/t" + std::to_string(rng.below(5));
        }
        return node;
    }
    switch (rng.below(3)) {
        case 0:
            node->kind = lib::ExprNode::Kind::kUnary;
            node->op = '-';
            node->lhs = random_expr(rng, depth - 1);
            return node;
        case 1: {
            node->kind = lib::ExprNode::Kind::kCall;
            node->name = rng.below(2) ? "min" : "max";
            node->args.push_back(random_expr(rng, depth - 1));
            node->args.push_back(random_expr(rng, depth - 1));
            return node;
        }
        default: {
            static const char ops[] = {'+', '-', '*', '/'};
            node->kind = lib::ExprNode::Kind::kBinary;
            node->op = ops[rng.below(4)];
            node->lhs = random_expr(rng, depth - 1);
            node->rhs = random_expr(rng, depth - 1);
            return node;
        }
    }
}

TEST_P(ExpressionProperty, PrintParseEvaluateFixpoint) {
    Rng rng(seed());
    const auto resolve = [](const std::string& topic) {
        return static_cast<double>(topic.back() - '0') * 7.5 + 1.0;
    };
    for (int i = 0; i < 300; ++i) {
        const auto expr = random_expr(rng, 4);
        const std::string text = lib::expression_to_string(*expr);
        const auto reparsed = lib::parse_expression(text);
        const double a = lib::evaluate_expression(*expr, resolve);
        const double b = lib::evaluate_expression(*reparsed, resolve);
        if (std::isfinite(a) && std::abs(a) < 1e12) {
            // to_string prints ~6 significant digits for literals, so
            // allow relative slack.
            EXPECT_NEAR(b, a, std::abs(a) * 1e-4 + 1e-4) << text;
        }
        // Operand extraction is stable across the round trip.
        EXPECT_EQ(lib::expression_operands(*reparsed),
                  lib::expression_operands(*expr));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpressionProperty,
                         ::testing::Values(31, 32, 33));

// ================================================================= units

class UnitProperty : public Seeded {};

TEST_P(UnitProperty, ConversionRoundTripsWithinDimension) {
    Rng rng(seed());
    static const char* kGroups[][5] = {
        {"uW", "mW", "W", "kW", "MW"},
        {"C", "degC", "mC", "K", "F"},
        {"B", "KB", "MB", "KiB", "MiB"},
        {"ns", "us", "ms", "s", "min"},
        {"uJ", "mJ", "J", "Wh", "kWh"},
    };
    for (int i = 0; i < 1000; ++i) {
        const auto& group = kGroups[rng.below(std::size(kGroups))];
        const Unit a = parse_unit(group[rng.below(5)]);
        const Unit b = parse_unit(group[rng.below(5)]);
        const double value = rng.uniform(-1e6, 1e6);
        const double there = convert_unit(value, a, b);
        const double back = convert_unit(there, b, a);
        EXPECT_NEAR(back, value, std::abs(value) * 1e-9 + 1e-9)
            << a.name << " -> " << b.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitProperty, ::testing::Values(41, 42));

// =========================================================== SID mapping

class SidProperty : public Seeded {};

TEST_P(SidProperty, RandomTopicSetStaysBijective) {
    Rng rng(seed());
    store::MetaStore meta;
    TopicMapper mapper(meta);
    std::map<std::string, SensorId> assigned;
    std::map<std::string, std::string> hex_to_topic;

    for (int i = 0; i < 1500; ++i) {
        std::string topic;
        const int levels = 1 + static_cast<int>(rng.below(8));
        for (int l = 0; l < levels; ++l)
            topic += "/c" + std::to_string(rng.below(12));

        const SensorId sid = mapper.to_sid(topic);
        const auto known = assigned.find(topic);
        if (known != assigned.end()) {
            EXPECT_EQ(sid, known->second) << "mapping must be stable";
        } else {
            assigned[topic] = sid;
            const auto clash = hex_to_topic.find(sid.hex());
            ASSERT_TRUE(clash == hex_to_topic.end())
                << "SID collision: " << topic << " vs " << clash->second;
            hex_to_topic[sid.hex()] = topic;
        }
        EXPECT_EQ(mapper.to_topic(sid), topic);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SidProperty, ::testing::Values(51, 52, 53));

// ========================================================= batch payload

class PayloadProperty : public Seeded {};

namespace {

std::vector<Reading> random_readings(Rng& rng, std::size_t n) {
    std::vector<Reading> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Realistic timestamps stay far below the 0xDB.. range that
        // would alias the v1 batch magic (year ~2400+).
        const TimestampNs ts = 1 + rng.below(1ull << 60);
        out.push_back({ts, static_cast<Value>(rng.next_u64())});
    }
    return out;
}

std::vector<Reading> flatten(const BatchPayloadView& view) {
    std::vector<Reading> out;
    for (const auto& section : view.sections)
        for (std::size_t i = 0; i < section.readings.size(); ++i)
            out.push_back(section.readings[i]);
    return out;
}

}  // namespace

TEST_P(PayloadProperty, BatchRoundTripsArbitrarySections) {
    Rng rng(seed());
    std::vector<std::string> topics;
    std::vector<std::vector<Reading>> readings;
    const std::size_t n_sections = 1 + rng.below(8);
    for (std::size_t s = 0; s < n_sections; ++s) {
        topics.push_back("/prop/node" + std::to_string(rng.below(4)) +
                         "/s" + std::to_string(s));
        readings.push_back(random_readings(rng, rng.below(50)));
    }
    std::vector<SensorBatch> batches;
    for (std::size_t s = 0; s < n_sections; ++s)
        batches.push_back({topics[s], readings[s]});

    const auto payload = encode_batch(batches);
    ASSERT_TRUE(is_batch_payload(payload));

    BatchPayloadView view;
    decode_batch(payload, view);
    EXPECT_EQ(view.torn_bytes, 0u);
    ASSERT_EQ(view.sections.size(), n_sections);
    std::size_t total = 0;
    for (std::size_t s = 0; s < n_sections; ++s) {
        EXPECT_EQ(view.sections[s].topic, topics[s]);
        ASSERT_EQ(view.sections[s].readings.size(), readings[s].size());
        for (std::size_t i = 0; i < readings[s].size(); ++i) {
            EXPECT_EQ(view.sections[s].readings[i].ts, readings[s][i].ts);
            EXPECT_EQ(view.sections[s].readings[i].value,
                      readings[s][i].value);
        }
        total += readings[s].size();
    }
    EXPECT_EQ(view.total_readings, total);
}

TEST_P(PayloadProperty, TruncatedBatchSalvagesExactPrefix) {
    Rng rng(seed());
    std::vector<std::vector<Reading>> readings;
    std::vector<std::string> topics;
    std::vector<SensorBatch> batches;
    const std::size_t n_sections = 1 + rng.below(5);
    for (std::size_t s = 0; s < n_sections; ++s) {
        topics.push_back("/prop/t" + std::to_string(s));
        readings.push_back(random_readings(rng, 1 + rng.below(20)));
    }
    for (std::size_t s = 0; s < n_sections; ++s)
        batches.push_back({topics[s], readings[s]});
    const auto payload = encode_batch(batches);

    std::vector<Reading> all;
    for (const auto& r : readings) all.insert(all.end(), r.begin(), r.end());

    // Cut anywhere past the header: decode must never throw, and what it
    // returns must be exactly a prefix of the original reading sequence.
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t cut =
            kBatchHeaderBytes + rng.below(payload.size() - kBatchHeaderBytes + 1);
        BatchPayloadView view;
        decode_batch(std::span<const std::uint8_t>(payload.data(), cut),
                     view);
        const auto got = flatten(view);
        ASSERT_LE(got.size(), all.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].ts, all[i].ts);
            EXPECT_EQ(got[i].value, all[i].value);
        }
        if (cut < payload.size())
            EXPECT_LT(got.size() + 0u, all.size() + 1u);  // salvage bounded
        if (cut == payload.size()) {
            EXPECT_EQ(got.size(), all.size());
            EXPECT_EQ(view.torn_bytes, 0u);
        }
    }
}

TEST_P(PayloadProperty, V0ViewMatchesLegacyDecoderAndSalvagesTails) {
    Rng rng(seed());
    const auto readings = random_readings(rng, rng.below(64));
    auto payload = encode_readings(readings);

    const auto legacy = decode_readings(payload);
    const auto salvage = decode_readings_view(payload);
    EXPECT_FALSE(is_batch_payload(payload));
    EXPECT_EQ(salvage.torn_bytes, 0u);
    ASSERT_EQ(salvage.readings.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(salvage.readings[i].ts, legacy[i].ts);
        EXPECT_EQ(salvage.readings[i].value, legacy[i].value);
    }

    // A torn tail keeps the aligned prefix and reports the tail size.
    const std::size_t tail = 1 + rng.below(kReadingWireBytes - 1);
    payload.resize(payload.size() + tail, 0xEE);
    const auto torn = decode_readings_view(payload);
    EXPECT_EQ(torn.readings.size(), readings.size());
    EXPECT_EQ(torn.torn_bytes, tail);
}

TEST_P(PayloadProperty, TraceTrailerRoundTripsThroughBatch) {
    Rng rng(seed());
    std::vector<std::string> topics;
    std::vector<std::vector<Reading>> readings;
    std::vector<SensorBatch> batches;
    const std::size_t n_sections = 1 + rng.below(6);
    for (std::size_t s = 0; s < n_sections; ++s) {
        topics.push_back("/prop/trace" + std::to_string(s));
        readings.push_back(random_readings(rng, rng.below(30)));
    }
    for (std::size_t s = 0; s < n_sections; ++s)
        batches.push_back({topics[s], readings[s]});
    telemetry::trace::TraceContext ctx;
    ctx.trace_id = rng.next_u64() | 1;  // nonzero
    ctx.origin_ns = rng.next_u64();
    ctx.flags = static_cast<std::uint8_t>(
        telemetry::trace::kFlagSampled |
        (rng.below(2) ? telemetry::trace::kFlagForced : 0));

    const auto payload = encode_batch(batches, ctx);
    ASSERT_TRUE(is_batch_payload(payload));
    // The broker-side tail probe sees the same context.
    const auto peeked = telemetry::trace::peek_trailer(payload);
    EXPECT_EQ(peeked.trace_id, ctx.trace_id);
    EXPECT_EQ(peeked.origin_ns, ctx.origin_ns);
    EXPECT_EQ(peeked.flags, ctx.flags);

    BatchPayloadView view;
    decode_batch(payload, view);
    EXPECT_EQ(view.torn_bytes, 0u);
    EXPECT_EQ(view.trace.trace_id, ctx.trace_id);
    EXPECT_EQ(view.trace.origin_ns, ctx.origin_ns);
    EXPECT_EQ(view.trace.flags, ctx.flags);
    // The trailer must not perturb the data itself.
    ASSERT_EQ(view.sections.size(), n_sections);
    std::size_t total = 0;
    for (std::size_t s = 0; s < n_sections; ++s) {
        EXPECT_EQ(view.sections[s].topic, topics[s]);
        ASSERT_EQ(view.sections[s].readings.size(), readings[s].size());
        total += readings[s].size();
    }
    EXPECT_EQ(view.total_readings, total);
}

TEST_P(PayloadProperty, TrailerlessBatchDecodesWithoutTrace) {
    Rng rng(seed());
    std::vector<SensorBatch> batches;
    std::vector<Reading> readings = random_readings(rng, 1 + rng.below(30));
    batches.push_back({"/prop/notrace", readings});

    const auto payload = encode_batch(batches);  // v1 without a trailer
    EXPECT_FALSE(telemetry::trace::peek_trailer(payload).valid());

    BatchPayloadView view;
    // Poison the view's trace: a prior decode of a traced payload into
    // the same (thread_local, in the agent) view must not leak through.
    view.trace.trace_id = 0xBAD;
    decode_batch(payload, view);
    EXPECT_FALSE(view.trace.valid());
    EXPECT_EQ(view.torn_bytes, 0u);
    ASSERT_EQ(view.sections.size(), 1u);
    EXPECT_EQ(view.sections[0].readings.size(), readings.size());
}

TEST_P(PayloadProperty, TornTrailerNeverMisattributesTrace) {
    Rng rng(seed());
    std::vector<SensorBatch> batches;
    std::vector<std::vector<Reading>> readings;
    std::vector<std::string> topics;
    const std::size_t n_sections = 1 + rng.below(4);
    for (std::size_t s = 0; s < n_sections; ++s) {
        topics.push_back("/prop/torn" + std::to_string(s));
        readings.push_back(random_readings(rng, 1 + rng.below(16)));
    }
    for (std::size_t s = 0; s < n_sections; ++s)
        batches.push_back({topics[s], readings[s]});
    telemetry::trace::TraceContext ctx;
    ctx.trace_id = rng.next_u64() | 1;
    ctx.origin_ns = rng.next_u64();
    ctx.flags = telemetry::trace::kFlagSampled;
    const auto payload = encode_batch(batches, ctx);

    std::vector<Reading> all;
    for (const auto& r : readings) all.insert(all.end(), r.begin(), r.end());

    // Any truncation — through the sections OR through the trailer
    // itself — must decode with NO trace: a partial trailer could
    // otherwise attribute a salvaged prefix to a garbled trace ID.
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t cut =
            kBatchHeaderBytes +
            rng.below(payload.size() - kBatchHeaderBytes);  // < full size
        BatchPayloadView view;
        view.trace.trace_id = 0xBAD;  // must be reset by decode
        decode_batch(std::span<const std::uint8_t>(payload.data(), cut),
                     view);
        EXPECT_FALSE(view.trace.valid())
            << "cut=" << cut << " of " << payload.size();
        // And the salvage property still holds under the trailer.
        const auto got = flatten(view);
        ASSERT_LE(got.size(), all.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].ts, all[i].ts);
            EXPECT_EQ(got[i].value, all[i].value);
        }
    }
    // The un-cut payload keeps its trace (sanity against over-rejecting).
    BatchPayloadView whole;
    decode_batch(payload, whole);
    EXPECT_EQ(whole.trace.trace_id, ctx.trace_id);
}

TEST_P(PayloadProperty, FuzzedBatchDecodeNeverCrashes) {
    Rng rng(seed());
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> junk(rng.below(256));
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
        if (junk.size() >= 2) {
            junk[0] = kBatchPayloadMagic;  // force dispatch into v1 path
            junk[1] = kBatchPayloadVersion;
        }
        BatchPayloadView view;
        if (is_batch_payload(junk)) {
            decode_batch(junk, view);  // must not throw or crash
            std::size_t n = 0;
            for (const auto& s : view.sections) n += s.readings.size();
            EXPECT_EQ(view.total_readings, n);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PayloadProperty,
                         ::testing::Values(61, 62, 63, 64, 65));

// ====================================================== ts block codec

class TsBlockProperty : public Seeded {};

namespace {

std::vector<store::Row> series(Rng& rng, int shape, std::size_t n) {
    std::vector<store::Row> rows;
    rows.reserve(n);
    TimestampNs ts = 1 + rng.below(1ull << 40);
    std::int64_t value = static_cast<std::int64_t>(rng.below(1000));
    for (std::size_t i = 0; i < n; ++i) {
        store::Row row;
        switch (shape) {
            case 0:  // paper-regular: fixed stride, constant value + TTL
                ts += kNsPerSec;
                row = {ts, value, 3600};
                break;
            case 1:  // monotone ts, slowly moving value
                ts += kNsPerSec + rng.below(1000);
                value += static_cast<std::int64_t>(rng.below(9)) - 4;
                row = {ts, value, 0};
                break;
            default:  // adversarial jitter: anything goes (ts ascending)
                ts += rng.below(1ull << 34);
                row = {ts, static_cast<Value>(rng.next_u64()),
                       static_cast<std::uint32_t>(rng.next_u64())};
                break;
        }
        rows.push_back(row);
    }
    return rows;
}

}  // namespace

TEST_P(TsBlockProperty, GorillaRoundTripsEveryShape) {
    Rng rng(seed());
    for (int shape = 0; shape < 3; ++shape) {
        const auto rows = series(rng, shape, 1 + rng.below(512));
        std::vector<std::uint8_t> encoded;
        store::encode_rows(store::BlockFormat::kGorilla, rows, encoded);
        std::vector<store::Row> decoded;
        store::decode_rows(store::BlockFormat::kGorilla, encoded,
                           rows.size(), decoded);
        ASSERT_EQ(decoded.size(), rows.size()) << "shape " << shape;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            EXPECT_EQ(decoded[i].ts, rows[i].ts);
            EXPECT_EQ(decoded[i].value, rows[i].value);
            EXPECT_EQ(decoded[i].expiry_s, rows[i].expiry_s);
        }
    }
}

TEST_P(TsBlockProperty, BestEncodingRoundTripsAndNeverLosesToRaw) {
    Rng rng(seed());
    for (int shape = 0; shape < 3; ++shape) {
        const auto rows = series(rng, shape, 1 + rng.below(512));
        std::vector<std::uint8_t> encoded;
        const auto format = store::encode_rows_best(rows, encoded);
        EXPECT_LE(encoded.size(), rows.size() * store::Row::kBytes);
        std::vector<store::Row> decoded;
        store::decode_rows(format, encoded, rows.size(), decoded);
        ASSERT_EQ(decoded.size(), rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
            EXPECT_EQ(decoded[i].ts, rows[i].ts);
            EXPECT_EQ(decoded[i].value, rows[i].value);
            EXPECT_EQ(decoded[i].expiry_s, rows[i].expiry_s);
        }
    }
}

TEST_P(TsBlockProperty, RegularSeriesCompressBelowFourBytesPerRow) {
    Rng rng(seed());
    const auto rows = series(rng, 0, 512);
    std::vector<std::uint8_t> encoded;
    const auto format = store::encode_rows_best(rows, encoded);
    EXPECT_EQ(format, store::BlockFormat::kGorilla);
    EXPECT_LE(encoded.size(), rows.size() * 4u)
        << "bytes/row " << (double(encoded.size()) / rows.size());
}

TEST_P(TsBlockProperty, TruncatedGorillaPayloadThrowsInsteadOfCrashing) {
    Rng rng(seed());
    const auto rows = series(rng, 2, 64);
    std::vector<std::uint8_t> encoded;
    store::encode_rows(store::BlockFormat::kGorilla, rows, encoded);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t cut = rng.below(encoded.size());
        std::vector<store::Row> decoded;
        EXPECT_THROW(
            store::decode_rows(
                store::BlockFormat::kGorilla,
                std::span<const std::uint8_t>(encoded.data(), cut),
                rows.size(), decoded),
            StoreError);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsBlockProperty,
                         ::testing::Values(71, 72, 73, 74, 75));

}  // namespace
}  // namespace dcdb
