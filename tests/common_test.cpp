// Unit tests for the common substrate: strings, config property trees,
// units, byte buffers, clocks, RNG and self-metering.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "common/bytebuf.hpp"
#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/proc_metrics.hpp"
#include "common/random.hpp"
#include "common/string_utils.hpp"
#include "common/units.hpp"

namespace dcdb {
namespace {

TEST(StringUtils, SplitKeepsEmptyFields) {
    const auto parts = split("a//b/", '/');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtils, SplitNonemptyDropsEmptyFields) {
    const auto parts = split_nonempty("/sys//rack01/node3/", '/');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "sys");
    EXPECT_EQ(parts[2], "node3");
}

TEST(StringUtils, TrimStripsWhitespaceOnly) {
    EXPECT_EQ(trim("  a b \t\n"), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
}

TEST(StringUtils, ParseI64RejectsJunk) {
    EXPECT_EQ(parse_i64("42").value(), 42);
    EXPECT_EQ(parse_i64("-7").value(), -7);
    EXPECT_FALSE(parse_i64("42x").has_value());
    EXPECT_FALSE(parse_i64("").has_value());
    EXPECT_FALSE(parse_i64("4 2").has_value());
}

TEST(StringUtils, ParseU64RejectsNegative) {
    EXPECT_EQ(parse_u64("18446744073709551615").value(),
              18446744073709551615ull);
    EXPECT_FALSE(parse_u64("-1").has_value());
}

TEST(StringUtils, ParseDurationDefaultsToMilliseconds) {
    EXPECT_EQ(parse_duration_ns("1000").value(), 1000ull * kNsPerMs);
    EXPECT_EQ(parse_duration_ns("100ms").value(), 100ull * kNsPerMs);
    EXPECT_EQ(parse_duration_ns("2s").value(), 2ull * kNsPerSec);
    EXPECT_EQ(parse_duration_ns("1m").value(), 60ull * kNsPerSec);
    EXPECT_EQ(parse_duration_ns("500us").value(), 500000ull);
    EXPECT_FALSE(parse_duration_ns("fast").has_value());
    EXPECT_FALSE(parse_duration_ns("10 parsecs").has_value());
}

TEST(StringUtils, ParseBoolVariants) {
    EXPECT_TRUE(parse_bool("true").value());
    EXPECT_TRUE(parse_bool("ON").value());
    EXPECT_FALSE(parse_bool("off").value());
    EXPECT_FALSE(parse_bool("maybe").has_value());
}

TEST(StringUtils, JoinRoundTripsSplit) {
    const std::vector<std::string> parts{"sys", "rack01", "node3", "power"};
    EXPECT_EQ(join(parts, '/'), "sys/rack01/node3/power");
}

TEST(Clock, NextAlignedIsStrictlyAfter) {
    EXPECT_EQ(next_aligned(0, 1000), 1000u);
    EXPECT_EQ(next_aligned(999, 1000), 1000u);
    EXPECT_EQ(next_aligned(1000, 1000), 2000u);
    EXPECT_EQ(next_aligned(1001, 1000), 2000u);
}

TEST(Clock, AlignedTicksAgreeAcrossIndependentObservers) {
    // The NTP-style property the Pusher relies on: two components that
    // align independently to the same interval produce the same deadline.
    const TimestampNs interval = 100 * kNsPerMs;
    const TimestampNs t = now_ns();
    const TimestampNs a = next_aligned(t, interval);
    const TimestampNs b = next_aligned(t + 1, interval);
    EXPECT_TRUE(a == b || b == a + interval);
    EXPECT_EQ(a % interval, 0u);
}

TEST(Config, ParsesNestedTree) {
    const auto root = parse_config(R"(
        global {
            mqttBroker 127.0.0.1:1883
            threads 2
        }
        group cpu {
            interval 1000ms
            sensor instructions {
                type perfevents
            }
            sensor cycles {
                type perfevents
            }
        }
    )");
    EXPECT_EQ(root.get_string("global.mqttBroker"), "127.0.0.1:1883");
    EXPECT_EQ(root.get_i64("global.threads"), 2);
    const ConfigNode* group = root.child("group");
    ASSERT_NE(group, nullptr);
    EXPECT_EQ(group->value(), "cpu");
    EXPECT_EQ(group->children_named("sensor").size(), 2u);
    EXPECT_EQ(group->get_duration_ns_or("interval", 0), kNsPerSec);
}

TEST(Config, QuotedValuesAndComments) {
    const auto root = parse_config(
        "# leading comment\n"
        "path \"/var/run/my dir\" # trailing comment\n"
        "a 1 ; b 2\n"
        "empty \"\"\n");
    EXPECT_EQ(root.get_string("path"), "/var/run/my dir");
    EXPECT_EQ(root.get_string("empty"), "");
    // ';' separates entries on one line.
    EXPECT_EQ(root.get_i64("a"), 1);
    EXPECT_EQ(root.get_i64("b"), 2);
}

TEST(Config, MissingKeyThrowsAndFallbacksApply) {
    const auto root = parse_config("a 1\n");
    EXPECT_THROW(root.get_string("b"), ConfigError);
    EXPECT_EQ(root.get_string_or("b", "x"), "x");
    EXPECT_EQ(root.get_i64_or("b", 9), 9);
    EXPECT_EQ(root.get_i64("a"), 1);
}

TEST(Config, MalformedInputThrowsWithDiagnostics) {
    EXPECT_THROW(parse_config("a {"), ConfigError);
    EXPECT_THROW(parse_config("}"), ConfigError);
    EXPECT_THROW(parse_config("a \"unterminated"), ConfigError);
}

TEST(Config, IncludeDirectivePullsInOtherFiles) {
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() /
                     ("dcdb_cfg_inc_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    {
        std::ofstream common(dir / "common.conf");
        common << "global { threads 4 }\n";
        std::ofstream main(dir / "main.conf");
        main << "include common.conf\nplugins { tester { } }\n";
    }
    const auto root = parse_config_file((dir / "main.conf").string());
    EXPECT_EQ(root.get_i64("global.threads"), 4);
    EXPECT_NE(root.child("plugins"), nullptr);
    EXPECT_THROW(parse_config_file((dir / "missing.conf").string()),
                 ConfigError);
    {
        std::ofstream bad(dir / "bad.conf");
        bad << "include nonexistent.conf\n";
    }
    EXPECT_THROW(parse_config_file((dir / "bad.conf").string()),
                 ConfigError);
    fs::remove_all(dir);
}

TEST(Config, DeepNestingRoundTrips) {
    const auto root =
        parse_config("a { b { c { d { e leaf } } } }");
    EXPECT_EQ(root.get_string("a.b.c.d.e"), "leaf");
    const auto again = parse_config(root.to_string());
    EXPECT_EQ(again.get_string("a.b.c.d.e"), "leaf");
}

TEST(Config, RoundTripThroughToString) {
    const auto root = parse_config(
        "global {\n  broker 127.0.0.1:1883\n  name \"with space\"\n}\n");
    const auto again = parse_config(root.to_string());
    EXPECT_EQ(again.get_string("global.broker"), "127.0.0.1:1883");
    EXPECT_EQ(again.get_string("global.name"), "with space");
}

TEST(Units, PowerPrefixesConvert) {
    const Unit mw = parse_unit("mW");
    const Unit kw = parse_unit("kW");
    EXPECT_NEAR(convert_unit(1.5e6, mw, kw), 1.5, 1e-9)
        << "1.5e6 mW = 1.5 kW";
    EXPECT_NEAR(convert_unit(2.0, kw, parse_unit("W")), 2000.0, 1e-9);
}

TEST(Units, TemperatureAffineConversions) {
    const Unit c = parse_unit("C");
    const Unit f = parse_unit("F");
    const Unit k = parse_unit("K");
    const Unit mc = parse_unit("mC");
    EXPECT_NEAR(convert_unit(100.0, c, f), 212.0, 1e-9);
    EXPECT_NEAR(convert_unit(32.0, f, c), 0.0, 1e-9);
    EXPECT_NEAR(convert_unit(0.0, c, k), 273.15, 1e-9);
    EXPECT_NEAR(convert_unit(45000.0, mc, c), 45.0, 1e-9);
}

TEST(Units, IncompatibleDimensionsThrow) {
    EXPECT_THROW(convert_unit(1.0, parse_unit("W"), parse_unit("C")), Error);
}

TEST(Units, DimensionlessPassesThrough) {
    EXPECT_EQ(convert_unit(42.0, parse_unit(""), parse_unit("kW")), 42.0);
    EXPECT_EQ(convert_unit(42.0, parse_unit("instructions"), parse_unit("")),
              42.0);
}

TEST(Units, EnergyWattHours) {
    EXPECT_NEAR(convert_unit(1.0, parse_unit("kWh"), parse_unit("J")), 3.6e6,
                1e-3);
}

TEST(ByteBuf, BigEndianRoundTrip) {
    ByteWriter w;
    w.u8(0xAB);
    w.u16be(0x1234);
    w.u32be(0xDEADBEEF);
    w.u64be(0x0123456789ABCDEFull);
    w.i64be(-42);
    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16be(), 0x1234);
    EXPECT_EQ(r.u32be(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64be(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64be(), -42);
    EXPECT_TRUE(r.empty());
}

TEST(ByteBuf, MqttStringRoundTrip) {
    ByteWriter w;
    w.mqtt_str("/sys/node0/power");
    ByteReader r(w.data());
    EXPECT_EQ(r.mqtt_str(), "/sys/node0/power");
}

TEST(ByteBuf, VarintBoundaries) {
    // MQTT remaining-length encoding boundaries from the 3.1.1 spec.
    for (std::uint32_t v : {0u, 127u, 128u, 16383u, 16384u, 2097151u,
                            2097152u, 268435455u}) {
        ByteWriter w;
        w.varint(v);
        ByteReader r(w.data());
        EXPECT_EQ(r.varint(), v);
    }
    ByteWriter w;
    w.varint(127);
    EXPECT_EQ(w.size(), 1u);
    ByteWriter w2;
    w2.varint(128);
    EXPECT_EQ(w2.size(), 2u);
}

TEST(ByteBuf, UnderrunThrows) {
    ByteWriter w;
    w.u8(1);
    ByteReader r(w.data());
    r.u8();
    EXPECT_THROW(r.u8(), ProtocolError);
}

TEST(Random, XoshiroIsDeterministicPerSeed) {
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Random, UniformInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Random, GaussianMomentsApproximatelyStandard) {
    Rng rng(42);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Random, OuProcessRevertsToMean) {
    OuProcess ou(50.0, /*theta=*/2.0, /*sigma=*/0.5, /*seed=*/1);
    double v = 0;
    for (int i = 0; i < 5000; ++i) v = ou.step(0.01);
    EXPECT_NEAR(v, 50.0, 5.0);
}

TEST(ProcMetrics, CpuLoadReflectsBusyWork) {
    CpuLoadMeter meter;
    // Busy-spin ~50ms of CPU.
    volatile double x = 1.0;
    const auto start = steady_ns();
    while (steady_ns() - start < 50 * kNsPerMs) x = x * 1.0000001;
    const double load = meter.load_percent();
    EXPECT_GT(load, 20.0);
}

TEST(ProcMetrics, RssIsNonZero) {
    CpuLoadMeter meter;
    EXPECT_GT(meter.rss_bytes(), 1u << 20);
}

TEST(ProcMetrics, ThreadCpuClockAdvancesWithWork) {
    const std::uint64_t before = thread_cpu_ns();
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
    EXPECT_GT(thread_cpu_ns(), before);
}

}  // namespace
}  // namespace dcdb
