// Tests for the wide-column store substrate: murmur hashing, bloom
// filters, partitioners, memtable, SSTables, commit log, storage node and
// the multi-node cluster (replication, locality, TTL, compaction,
// crash recovery).
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/bytebuf.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "store/bloom.hpp"
#include "store/cluster.hpp"
#include "store/commitlog.hpp"
#include "store/compaction.hpp"
#include "store/memtable.hpp"
#include "store/metastore.hpp"
#include "store/murmur.hpp"
#include "store/node.hpp"
#include "store/partitioner.hpp"
#include "store/sstable.hpp"

namespace dcdb::store {
namespace {

namespace fs = std::filesystem;

class TempDir {
  public:
    TempDir() {
        static std::atomic<int> counter{0};
        path_ = fs::temp_directory_path() /
                ("dcdb_store_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1)));
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

Key make_key(std::uint8_t tag, std::uint32_t bucket = 0) {
    Key k;
    k.sid.fill(0);
    k.sid[0] = tag;
    k.sid[15] = tag;
    k.bucket = bucket;
    return k;
}

std::span<const std::uint8_t> bytes_of(const std::string& s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ---------------------------------------------------------------- murmur

TEST(Murmur, DeterministicAndSeedSensitive) {
    const std::string data = "the quick brown fox";
    const auto a = murmur3_x64_128(bytes_of(data));
    const auto b = murmur3_x64_128(bytes_of(data));
    const auto c = murmur3_x64_128(bytes_of(data), 1);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Murmur, AllTailLengthsDiffer) {
    // Exercise every switch-case tail path (lengths 0..16).
    std::set<std::uint64_t> seen;
    std::string s;
    for (int len = 0; len <= 16; ++len) {
        seen.insert(murmur3_token(bytes_of(s)));
        s.push_back(static_cast<char>('a' + len));
    }
    EXPECT_EQ(seen.size(), 17u);
}

TEST(Murmur, TokenDistributionIsRoughlyUniform) {
    constexpr int kNodes = 8;
    constexpr int kKeys = 8000;
    std::array<int, kNodes> counts{};
    for (int i = 0; i < kKeys; ++i) {
        const std::string key = "sensor-" + std::to_string(i);
        counts[murmur3_token(bytes_of(key)) % kNodes]++;
    }
    for (const int c : counts) {
        EXPECT_GT(c, kKeys / kNodes / 2);
        EXPECT_LT(c, kKeys / kNodes * 2);
    }
}

// ----------------------------------------------------------------- bloom

TEST(Bloom, NoFalseNegatives) {
    BloomFilter bloom(1000, 0.01);
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "key" + std::to_string(i);
        bloom.insert(bytes_of(key));
    }
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "key" + std::to_string(i);
        EXPECT_TRUE(bloom.may_contain(bytes_of(key)));
    }
}

TEST(Bloom, FalsePositiveRateNearTarget) {
    BloomFilter bloom(2000, 0.01);
    for (int i = 0; i < 2000; ++i) {
        const std::string key = "in" + std::to_string(i);
        bloom.insert(bytes_of(key));
    }
    int fp = 0;
    const int probes = 10000;
    for (int i = 0; i < probes; ++i) {
        const std::string key = "out" + std::to_string(i);
        if (bloom.may_contain(bytes_of(key))) ++fp;
    }
    EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(Bloom, SerializedStateRoundTrips) {
    BloomFilter a(100);
    const std::string key = "present";
    a.insert(bytes_of(key));
    BloomFilter b(a.bits(), a.hash_count());
    EXPECT_TRUE(b.may_contain(bytes_of(key)));
}

// ----------------------------------------------------------- partitioner

TEST(Partitioner, HierarchyKeepsSubtreesTogether) {
    HierarchyPartitioner part(4);
    // Same 4-byte prefix, different leaves and buckets -> same node.
    Key a = make_key(1, 0);
    Key b = make_key(1, 99);
    b.sid[10] = 200;  // deep level differs
    for (std::size_t nodes : {2u, 3u, 7u, 16u}) {
        EXPECT_EQ(part.node_for(a, nodes), part.node_for(b, nodes));
    }
}

TEST(Partitioner, HierarchySeparatesDifferentSubtrees) {
    HierarchyPartitioner part(4);
    std::set<std::size_t> nodes_hit;
    for (std::uint8_t tag = 0; tag < 64; ++tag)
        nodes_hit.insert(part.node_for(make_key(tag), 8));
    EXPECT_GT(nodes_hit.size(), 4u) << "subtrees should spread over nodes";
}

TEST(Partitioner, Murmur3SpreadsBuckets) {
    Murmur3Partitioner part;
    // Same sensor, different time buckets spread over nodes (no locality).
    std::set<std::size_t> nodes_hit;
    for (std::uint32_t bucket = 0; bucket < 64; ++bucket)
        nodes_hit.insert(part.node_for(make_key(1, bucket), 8));
    EXPECT_GT(nodes_hit.size(), 4u);
}

TEST(Partitioner, FactoryRejectsUnknownName) {
    EXPECT_NO_THROW(make_partitioner("murmur3"));
    EXPECT_NO_THROW(make_partitioner("hierarchy"));
    EXPECT_THROW(make_partitioner("vogon"), StoreError);
}

// -------------------------------------------------------------- memtable

TEST(Memtable, InsertAndRangeQuery) {
    Memtable mt;
    const Key k = make_key(1);
    for (TimestampNs ts = 100; ts <= 1000; ts += 100)
        mt.insert(k, Row{ts, static_cast<Value>(ts * 2), 0});
    std::vector<Row> out;
    mt.query(k, 300, 700, out);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out.front().ts, 300u);
    EXPECT_EQ(out.back().ts, 700u);
    EXPECT_EQ(out[0].value, 600);
}

TEST(Memtable, OutOfOrderInsertIsSorted) {
    Memtable mt;
    const Key k = make_key(1);
    mt.insert(k, Row{500, 5, 0});
    mt.insert(k, Row{100, 1, 0});
    mt.insert(k, Row{300, 3, 0});
    std::vector<Row> out;
    mt.query(k, 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].ts, 100u);
    EXPECT_EQ(out[1].ts, 300u);
    EXPECT_EQ(out[2].ts, 500u);
}

TEST(Memtable, SameTimestampUpserts) {
    Memtable mt;
    const Key k = make_key(1);
    mt.insert(k, Row{100, 1, 0});
    mt.insert(k, Row{100, 2, 0});
    std::vector<Row> out;
    mt.query(k, 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 2);
}

TEST(Memtable, SeparateKeysAreIsolated) {
    Memtable mt;
    mt.insert(make_key(1), Row{100, 1, 0});
    mt.insert(make_key(2), Row{100, 2, 0});
    std::vector<Row> out;
    mt.query(make_key(1), 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 1);
}

TEST(Memtable, ApproxBytesGrows) {
    Memtable mt;
    const std::size_t before = mt.approx_bytes();
    for (int i = 0; i < 100; ++i)
        mt.insert(make_key(1), Row{static_cast<TimestampNs>(i), 0, 0});
    EXPECT_GT(mt.approx_bytes(), before + 100 * Row::kBytes - 1);
}

// --------------------------------------------------------------- sstable

TEST(SsTable, WriteOpenQuery) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    const Key k = make_key(3);
    for (TimestampNs ts = 10; ts <= 100; ts += 10)
        parts[k].push_back(Row{ts, static_cast<Value>(ts), 0});
    auto table = SsTable::write(dir.str() + "/t.db", 1, parts);

    std::vector<Row> out;
    table->query(k, 30, 60, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].ts, 30u);
    EXPECT_EQ(out[3].ts, 60u);
    EXPECT_EQ(table->generation(), 1u);
    EXPECT_EQ(table->row_count(), 10u);
}

TEST(SsTable, ReopenFromDiskPreservesData) {
    TempDir dir;
    const std::string path = dir.str() + "/t.db";
    {
        std::map<Key, std::vector<Row>> parts;
        parts[make_key(1)] = {Row{5, 50, 0}, Row{6, 60, 0}};
        parts[make_key(2)] = {Row{7, 70, 0}};
        SsTable::write(path, 9, parts);
    }
    auto table = SsTable::open(path);
    EXPECT_EQ(table->generation(), 9u);
    EXPECT_EQ(table->partition_count(), 2u);
    std::vector<Row> out;
    table->query(make_key(2), 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 70);
}

TEST(SsTable, MissingKeyReturnsNothing) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    parts[make_key(1)] = {Row{1, 1, 0}};
    auto table = SsTable::write(dir.str() + "/t.db", 1, parts);
    std::vector<Row> out;
    table->query(make_key(99), 0, kTimestampMax, out);
    EXPECT_TRUE(out.empty());
}

TEST(SsTable, LargePartitionBinarySearch) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    const Key k = make_key(1);
    for (TimestampNs ts = 0; ts < 20000; ++ts)
        parts[k].push_back(Row{ts, static_cast<Value>(ts), 0});
    auto table = SsTable::write(dir.str() + "/big.db", 1, parts);
    std::vector<Row> out;
    table->query(k, 9999, 10001, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1].ts, 10000u);
}

TEST(SsTable, CorruptFileIsRejected) {
    TempDir dir;
    const std::string path = dir.str() + "/junk.db";
    FILE* f = fopen(path.c_str(), "wb");
    const char junk[] = "this is not an sstable, not even close......";
    fwrite(junk, 1, sizeof junk, f);
    fclose(f);
    EXPECT_THROW(SsTable::open(path), StoreError);
}

TEST(SsTable, RegularSeriesCompressBelowFourBytesPerRow) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    const Key k = make_key(1);
    // The acceptance workload: monotone timestamps at a fixed stride,
    // slowly drifting values, constant TTL — the common DCDB sensor.
    for (TimestampNs i = 0; i < 5000; ++i)
        parts[k].push_back(Row{1000 + i * kNsPerSec,
                               static_cast<Value>(40 + (i % 3)), 3600});
    auto table = SsTable::write(dir.str() + "/t.db", 1, parts);
    EXPECT_LE(table->data_bytes(), 4u * 5000u)
        << "bytes/row "
        << (static_cast<double>(table->data_bytes()) / 5000.0);
    // Compression must be invisible to queries.
    std::vector<Row> out;
    table->query(k, 1000 + 100 * kNsPerSec, 1000 + 110 * kNsPerSec, out);
    ASSERT_EQ(out.size(), 11u);
    EXPECT_EQ(out.front().ts, 1000 + 100 * kNsPerSec);
    EXPECT_EQ(out.front().expiry_s, 3600u);
}

TEST(SsTable, QueriesAndRowReadsCrossCompressedBlockBoundaries) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    const Key k = make_key(1);
    for (TimestampNs ts = 0; ts < 2000; ++ts)
        parts[k].push_back(Row{ts, static_cast<Value>(ts * 3), 0});
    auto table = SsTable::write(dir.str() + "/t.db", 1, parts);

    // kBlockRows = 512: [500, 530] spans the first block boundary.
    std::vector<Row> out;
    table->query(k, 500, 530, out);
    ASSERT_EQ(out.size(), 31u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].ts, 500 + i);
        EXPECT_EQ(out[i].value, static_cast<Value>((500 + i) * 3));
    }

    // Positional reads (the compaction cursor path) across blocks.
    out.clear();
    table->read_partition_rows(0, 510, 520, out);
    ASSERT_EQ(out.size(), 520u);
    EXPECT_EQ(out.front().ts, 510u);
    EXPECT_EQ(out.back().ts, 1029u);

    // Reopen: the block directory round-trips through disk.
    auto reopened = SsTable::open(dir.str() + "/t.db");
    out.clear();
    reopened->query(k, 1535, 1540, out);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out.front().ts, 1535u);
}

// ------------------------------------------------------------- commitlog

TEST(CommitLog, AppendAndReplay) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    {
        CommitLog log(path);
        log.append(make_key(1), Row{10, 100, 0});
        log.append(make_key(2), Row{20, 200, 7});
        log.sync();
    }
    std::vector<std::pair<Key, Row>> seen;
    const auto n = CommitLog::replay(
        path, [&](const Key& k, const Row& r) { seen.emplace_back(k, r); });
    EXPECT_EQ(n.records, 2u);
    EXPECT_EQ(n.valid_bytes, fs::file_size(path));
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, make_key(1));
    EXPECT_EQ(seen[1].second.value, 200);
    EXPECT_EQ(seen[1].second.expiry_s, 7u);
}

TEST(CommitLog, ReplayStopsAtCorruptTail) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    {
        CommitLog log(path);
        log.append(make_key(1), Row{10, 100, 0});
        log.sync();
    }
    // Simulate a torn write: append garbage.
    FILE* f = fopen(path.c_str(), "ab");
    fwrite("garbage", 1, 7, f);
    fclose(f);

    std::uint64_t count = 0;
    CommitLog::replay(path, [&](const Key&, const Row&) { ++count; });
    EXPECT_EQ(count, 1u);
}

TEST(CommitLog, ResetTruncates) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    CommitLog log(path);
    log.append(make_key(1), Row{10, 100, 0});
    log.reset();
    log.sync();
    std::uint64_t count = 0;
    CommitLog::replay(path, [&](const Key&, const Row&) { ++count; });
    EXPECT_EQ(count, 0u);
}

TEST(CommitLog, AppendBatchReplaysAllRowsFromOneRecord) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    {
        CommitLog log(path);
        const std::vector<KeyedRow> batch{
            {make_key(1), Row{10, 100, 0}},
            {make_key(1), Row{11, 110, 0}},
            {make_key(2), Row{20, 200, 7}},
            {make_key(3), Row{30, 300, 0}},
            {make_key(3), Row{31, 310, 9}},
        };
        log.append_batch(batch);
        log.sync();
        EXPECT_EQ(log.records_appended(), 5u);
    }
    // One header + ONE record for the whole batch:
    // 8 + (count(4) + 5 * entry(40) + crc(4)).
    EXPECT_EQ(fs::file_size(path), 8u + 4u + 5u * 40u + 4u);
    std::vector<std::pair<Key, Row>> seen;
    const auto n = CommitLog::replay(
        path, [&](const Key& k, const Row& r) { seen.emplace_back(k, r); });
    EXPECT_EQ(n.records, 5u);
    EXPECT_EQ(n.valid_bytes, fs::file_size(path));
    ASSERT_EQ(seen.size(), 5u);
    EXPECT_EQ(seen[2].first, make_key(2));
    EXPECT_EQ(seen[2].second.expiry_s, 7u);
    EXPECT_EQ(seen[4].second.value, 310);
}

TEST(CommitLog, TornBatchedTailReplaysNoneOfItsRows) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    {
        CommitLog log(path);
        const std::vector<KeyedRow> first{
            {make_key(1), Row{1, 10, 0}},
            {make_key(1), Row{2, 20, 0}},
            {make_key(1), Row{3, 30, 0}},
        };
        const std::vector<KeyedRow> second{
            {make_key(2), Row{4, 40, 0}},
            {make_key(2), Row{5, 50, 0}},
        };
        log.append_batch(first);
        log.append_batch(second);
        log.sync();
    }
    // Tear the second record: a torn batch is all-or-nothing on replay.
    fs::resize_file(path, fs::file_size(path) - 5);
    std::vector<Row> seen;
    const auto n = CommitLog::replay(
        path, [&](const Key&, const Row& r) { seen.push_back(r); });
    EXPECT_EQ(n.records, 3u);
    EXPECT_EQ(n.valid_bytes, 8u + 4u + 3u * 40u + 4u);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen.back().ts, 3u);
}

TEST(CommitLog, LegacyHeaderlessLogStaysLegacyUntilReset) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    // Hand-write a headerless legacy (v1) record:
    // key(20) + ts(8) + value(8) + expiry(4) + crc(4).
    {
        ByteWriter w(44);
        std::uint8_t kb[Key::kBytes];
        make_key(1).serialize(kb);
        w.bytes(kb, sizeof kb);
        w.u64be(10);
        w.i64be(100);
        w.u32be(0);
        w.u32be(static_cast<std::uint32_t>(murmur3_token(w.data())));
        FILE* f = fopen(path.c_str(), "wb");
        fwrite(w.data().data(), 1, w.size(), f);
        fclose(f);
    }
    {
        // Appends to a non-empty legacy file must stay legacy: a v2
        // header written mid-file would orphan the prefix on replay.
        CommitLog log(path);
        log.append(make_key(2), Row{20, 200, 0});
        log.sync();
    }
    EXPECT_EQ(fs::file_size(path), 2u * 44u);
    std::uint64_t count = 0;
    CommitLog::replay(path, [&](const Key&, const Row&) { ++count; });
    EXPECT_EQ(count, 2u);

    // reset() truncates and converts the file to the v2 batch format.
    {
        CommitLog log(path);
        log.reset();
        log.append(make_key(3), Row{30, 300, 0});
        log.sync();
    }
    std::vector<Key> keys;
    const auto n = CommitLog::replay(
        path, [&](const Key& k, const Row&) { keys.push_back(k); });
    EXPECT_EQ(n.records, 1u);
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], make_key(3));
}

// ---------------------------------------------------------- storage node

TEST(StorageNode, InsertQueryAcrossFlush) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, true});
    const Key k = make_key(1);
    for (TimestampNs ts = 1; ts <= 100; ++ts)
        node.insert(k, ts, static_cast<Value>(ts * 10));
    node.flush();
    for (TimestampNs ts = 101; ts <= 200; ++ts)
        node.insert(k, ts, static_cast<Value>(ts * 10));

    // Query spans SSTable + memtable.
    const auto rows = node.query(k, 50, 150);
    ASSERT_EQ(rows.size(), 101u);
    EXPECT_EQ(rows.front().ts, 50u);
    EXPECT_EQ(rows.back().ts, 150u);
    EXPECT_EQ(rows.back().value, 1500);
}

TEST(StorageNode, NewerWriteShadowsOlderAcrossGenerations) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, true});
    const Key k = make_key(1);
    node.insert(k, 100, 1);
    node.flush();
    node.insert(k, 100, 2);  // same clustering key, newer write
    node.flush();
    auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);

    node.compact();
    rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);
    EXPECT_EQ(node.stats().sstables, 1u);
}

TEST(StorageNode, AutomaticFlushOnThreshold) {
    TempDir dir;
    StorageNode node({dir.str(), /*flush at*/ 4096, true});
    const Key k = make_key(1);
    for (TimestampNs ts = 1; ts <= 2000; ++ts) node.insert(k, ts, 1);
    EXPECT_GT(node.stats().flushes, 0u);
    EXPECT_EQ(node.query(k, 0, kTimestampMax).size(), 2000u);
}

TEST(StorageNode, TtlExpiresRows) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, false});
    const Key k = make_key(1);
    const TimestampNs now = now_ns();
    // Row whose expiry is already in the past vs one far in the future.
    node.insert(k, now - 10 * kNsPerSec, 1, /*ttl_s=*/1);
    node.insert(k, now, 2, /*ttl_s=*/3600);
    const auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);
}

TEST(StorageNode, CompactionDropsExpired) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, false});
    const Key k = make_key(1);
    const TimestampNs past = now_ns() - 100 * kNsPerSec;
    node.insert(k, past, 1, /*ttl_s=*/1);
    node.insert(k, past + 1, 2, /*ttl_s=*/0);
    node.flush();
    node.compact();
    const auto stats = node.stats();
    EXPECT_EQ(stats.sstables, 1u);
    const auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);
}

TEST(StorageNode, TruncateBeforeDropsOldData) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, false});
    const Key k = make_key(1);
    for (TimestampNs ts = 1; ts <= 100; ++ts) node.insert(k, ts, 1);
    node.truncate_before(51);
    const auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 50u);
    EXPECT_EQ(rows.front().ts, 51u);
}

TEST(StorageNode, CrashRecoveryViaCommitLog) {
    TempDir dir;
    {
        StorageNode node({dir.str(), 1u << 20, true});
        node.insert(make_key(1), 100, 42);
        node.insert(make_key(1), 101, 43);
        // "Crash": destructor without flush; commit log holds the data.
    }
    StorageNode recovered({dir.str(), 1u << 20, true});
    const auto rows = recovered.query(make_key(1), 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].value, 42);
    EXPECT_EQ(rows[1].value, 43);
}

TEST(StorageNode, RestartAfterFlushReopensSsTables) {
    TempDir dir;
    {
        StorageNode node({dir.str(), 1u << 20, true});
        node.insert(make_key(1), 100, 42);
        node.flush();
    }
    StorageNode recovered({dir.str(), 1u << 20, true});
    const auto rows = recovered.query(make_key(1), 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 42);
}

TEST(StorageNode, ConcurrentWritersAndReaders) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 18, false});
    constexpr int kWriters = 4;
    constexpr int kRowsEach = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kWriters + 1);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&node, w] {
            const Key k = make_key(static_cast<std::uint8_t>(w));
            for (int i = 1; i <= kRowsEach; ++i)
                node.insert(k, static_cast<TimestampNs>(i), i);
        });
    }
    threads.emplace_back([&node] {
        for (int i = 0; i < 50; ++i) {
            (void)node.query(make_key(0), 0, kTimestampMax);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    for (auto& t : threads) t.join();
    for (int w = 0; w < kWriters; ++w) {
        EXPECT_EQ(node.query(make_key(static_cast<std::uint8_t>(w)), 0,
                             kTimestampMax)
                      .size(),
                  static_cast<std::size_t>(kRowsEach));
    }
}

TEST(StorageNode, InsertBatchSurvivesCrashViaBatchedCommitLog) {
    TempDir dir;
    {
        StorageNode node({dir.str(), 1u << 20, true});
        const TimestampNs now = now_ns();
        const std::vector<BatchEntry> batch{
            {make_key(1), 100, 42, 0},
            {make_key(1), 101, 43, 0},
            {make_key(2), now, 44, 3600},  // TTL relative to the row's ts
        };
        node.insert_batch(batch);
        EXPECT_EQ(node.stats().writes, 3u);
        // "Crash": destructor without flush; the single batched commit
        // log record holds all three rows.
    }
    StorageNode recovered({dir.str(), 1u << 20, true});
    const auto rows = recovered.query(make_key(1), 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].value, 42);
    EXPECT_EQ(rows[1].value, 43);
    const auto other = recovered.query(make_key(2), 0, kTimestampMax);
    ASSERT_EQ(other.size(), 1u);
    EXPECT_EQ(other[0].value, 44);
}

// ------------------------------------------------------------ compaction

/// Write one SSTable holding `rows` for `key` at generation `gen`.
std::unique_ptr<SsTable> write_table(const std::string& dir, std::uint64_t gen,
                                     const Key& key,
                                     const std::vector<Row>& rows) {
    std::map<Key, std::vector<Row>> partitions;
    partitions[key] = rows;
    return SsTable::write(dir + "/sstable-" + std::to_string(gen) + ".db",
                          gen, partitions);
}

TEST(Compaction, StreamingWriterRoundTrips) {
    TempDir dir;
    const std::string path = dir.str() + "/sstable-7.db";
    SsTableWriter writer(path, 7, 2);
    writer.begin_partition(make_key(1));
    for (TimestampNs ts = 1; ts <= 5000; ++ts)
        writer.add_row(Row{ts, static_cast<Value>(ts), 0});
    writer.end_partition();
    writer.begin_partition(make_key(2));  // left empty: must be omitted
    writer.end_partition();
    writer.begin_partition(make_key(3));
    writer.add_row(Row{1, 42, 0});
    writer.end_partition();
    const auto table = writer.finish();

    EXPECT_EQ(table->generation(), 7u);
    EXPECT_EQ(table->partition_count(), 2u);
    EXPECT_EQ(table->row_count(), 5001u);
    std::vector<Row> rows;
    table->query(make_key(1), 0, kTimestampMax, rows);
    ASSERT_EQ(rows.size(), 5000u);
    EXPECT_EQ(rows.front().ts, 1u);
    EXPECT_EQ(rows.back().ts, 5000u);

    // The durable publish leaves no temporary behind.
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    // Reopen from disk: the streamed layout is the on-disk format.
    const auto reopened = SsTable::open(path);
    EXPECT_EQ(reopened->row_count(), 5001u);
}

TEST(Compaction, WriterRejectsOutOfOrderKeys) {
    TempDir dir;
    SsTableWriter writer(dir.str() + "/sstable-1.db", 1, 2);
    writer.begin_partition(make_key(5));
    writer.add_row(Row{1, 1, 0});
    writer.end_partition();
    EXPECT_THROW(writer.begin_partition(make_key(4)), StoreError);
}

TEST(Compaction, MergeShadowsNewestInputOnEqualTimestamp) {
    TempDir dir;
    const Key k = make_key(1);
    const auto old_table =
        write_table(dir.str(), 1, k, {{100, 1, 0}, {200, 1, 0}});
    const auto new_table =
        write_table(dir.str(), 2, k, {{200, 2, 0}, {300, 2, 0}});

    const auto result = merge_tables({old_table.get(), new_table.get()},
                                     dir.str() + "/merged.db", 2, {});
    ASSERT_NE(result.table, nullptr);
    EXPECT_EQ(result.stats.tables_in, 2u);
    EXPECT_EQ(result.stats.rows_in, 4u);
    EXPECT_EQ(result.stats.rows_out, 3u);

    std::vector<Row> rows;
    result.table->query(k, 0, kTimestampMax, rows);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].value, 1);  // ts 100, only in gen 1
    EXPECT_EQ(rows[1].value, 2);  // ts 200, gen 2 shadows gen 1
    EXPECT_EQ(rows[2].value, 2);  // ts 300, only in gen 2
}

TEST(Compaction, MergeAppliesCutoffAndExpiry) {
    TempDir dir;
    const Key k = make_key(1);
    const TimestampNs now = now_ns();
    // {ts, value, expiry_s}: row 2 expired long ago, rows 1 and 3 live.
    const auto table = write_table(
        dir.str(), 1, k,
        {{100, 1, 0},
         {200, 2, static_cast<std::uint32_t>(now / kNsPerSec - 50)},
         {300, 3, 0}});

    MergeOptions options;
    options.cutoff = 150;  // drops ts 100
    options.now = now;     // drops the expired ts 200
    const auto result =
        merge_tables({table.get()}, dir.str() + "/merged.db", 1, options);
    ASSERT_NE(result.table, nullptr);
    std::vector<Row> rows;
    result.table->query(k, 0, kTimestampMax, rows);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].ts, 300u);
}

TEST(Compaction, MergeWithNoSurvivorsReturnsNullAndRemovesFile) {
    TempDir dir;
    const Key k = make_key(1);
    const auto table = write_table(dir.str(), 1, k, {{100, 1, 0}});
    MergeOptions options;
    options.cutoff = 1000;  // everything cut off
    const std::string out = dir.str() + "/merged.db";
    const auto result = merge_tables({table.get()}, out, 1, options);
    EXPECT_EQ(result.table, nullptr);
    EXPECT_EQ(result.stats.rows_out, 0u);
    EXPECT_FALSE(fs::exists(out));
}

TEST(Compaction, MergeSpansManyPartitionsAndChunks) {
    TempDir dir;
    // Two tables with interleaved keys and >1 chunk of rows per shared
    // partition, so the cursor's chunked reads and the min-key scan both
    // get exercised.
    std::map<Key, std::vector<Row>> a_parts;
    std::map<Key, std::vector<Row>> b_parts;
    for (std::uint8_t tag = 1; tag <= 6; ++tag) {
        std::vector<Row> rows;
        for (TimestampNs ts = 1; ts <= 5000; ++ts)
            rows.push_back(Row{ts, tag, 0});
        if (tag % 2 == 0)
            a_parts[make_key(tag)] = rows;
        else
            b_parts[make_key(tag)] = std::move(rows);
    }
    // One shared partition to merge across both inputs.
    a_parts[make_key(7)] = {{1, 10, 0}, {2, 10, 0}};
    b_parts[make_key(7)] = {{2, 20, 0}, {3, 20, 0}};
    const auto a = SsTable::write(dir.str() + "/sstable-1.db", 1, a_parts);
    const auto b = SsTable::write(dir.str() + "/sstable-2.db", 2, b_parts);

    const auto result =
        merge_tables({a.get(), b.get()}, dir.str() + "/merged.db", 2, {});
    ASSERT_NE(result.table, nullptr);
    EXPECT_EQ(result.table->partition_count(), 7u);
    EXPECT_EQ(result.table->row_count(), 6u * 5000u + 3u);
    std::vector<Row> rows;
    result.table->query(make_key(7), 0, kTimestampMax, rows);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1].value, 20);  // ts 2: b (gen 2, later input) wins
}

TEST(Compaction, SelectSizeTierFindsAdjacentSimilarRun) {
    // Four similar-size tables after a big one: the run [1, 5) qualifies.
    const std::vector<std::uint64_t> sizes{1000, 10, 12, 11, 13};
    const auto tier = select_size_tier(sizes, 4, 2.0);
    EXPECT_EQ(tier.begin, 1u);
    EXPECT_EQ(tier.end, 5u);
}

TEST(Compaction, SelectSizeTierRespectsRatioAndMinTables) {
    // Geometric sizes: no four adjacent tables within 2x of each other.
    EXPECT_TRUE(select_size_tier({1, 4, 16, 64, 256}, 4, 2.0).empty());
    // Three similar tables are not enough for min_tables = 4...
    EXPECT_TRUE(select_size_tier({10, 11, 12}, 4, 2.0).empty());
    // ...but qualify when the policy asks for 3.
    const auto tier = select_size_tier({10, 11, 12}, 3, 2.0);
    EXPECT_EQ(tier.begin, 0u);
    EXPECT_EQ(tier.end, 3u);
}

TEST(Compaction, SelectSizeTierPrefersLongestThenCheapestRun) {
    // Two disjoint runs of length 4; the second rewrites fewer bytes.
    const std::vector<std::uint64_t> sizes{100, 110, 105, 108, 5000,
                                           10,  11,  10,  12};
    const auto tier = select_size_tier(sizes, 4, 2.0);
    EXPECT_EQ(tier.begin, 5u);
    EXPECT_EQ(tier.end, 9u);
}

TEST(StorageNode, MaintainMergesSizeTierAndKeepsOutliers) {
    TempDir dir;
    NodeConfig config;
    config.data_dir = dir.str();
    config.memtable_flush_bytes = 1u << 20;
    config.commitlog_enabled = false;
    config.compaction_min_tables = 3;
    StorageNode node(config);

    // One big table, then three small similar ones.
    const Key k = make_key(1);
    for (TimestampNs ts = 1; ts <= 2000; ++ts) node.insert(k, ts, 1);
    node.flush();
    for (int t = 0; t < 3; ++t) {
        for (TimestampNs ts = 3000 + t * 10; ts < 3005 + t * 10; ++ts)
            node.insert(k, ts, 2);
        node.flush();
    }
    ASSERT_EQ(node.stats().sstables, 4u);

    EXPECT_TRUE(node.maintain());
    auto stats = node.stats();
    EXPECT_EQ(stats.sstables, 2u);  // big outlier + merged small tier
    EXPECT_EQ(stats.compactions, 1u);
    EXPECT_EQ(stats.compaction_tables, 3u);
    EXPECT_GT(stats.compaction_bytes, 0u);
    EXPECT_EQ(node.query(k, 0, kTimestampMax).size(), 2015u);

    // Nothing left to merge: the next round is a no-op.
    EXPECT_FALSE(node.maintain());
}

TEST(StorageNode, MidSequenceMergePreservesShadowingAcrossReopen) {
    TempDir dir;
    NodeConfig config;
    config.data_dir = dir.str();
    config.memtable_flush_bytes = 1u << 20;
    config.commitlog_enabled = false;
    config.compaction_min_tables = 2;
    const Key k = make_key(1);
    {
        StorageNode node(config);
        // Two similar small tables, then a BIG newer table shadowing the
        // same timestamp: the tier merge must not let the merged output
        // jump ahead of the newer generation when reopened from disk.
        node.insert(k, 100, 1);
        node.flush();
        node.insert(k, 100, 2);
        node.flush();
        for (TimestampNs ts = 1000; ts <= 3000; ++ts) node.insert(k, ts, 3);
        node.insert(k, 100, 99);  // newest write for ts 100
        node.flush();
        ASSERT_EQ(node.stats().sstables, 3u);

        ASSERT_TRUE(node.maintain());  // merges the two small tables
        ASSERT_EQ(node.stats().sstables, 2u);
        const auto rows = node.query(k, 100, 100);
        ASSERT_EQ(rows.size(), 1u);
        EXPECT_EQ(rows[0].value, 99);
    }
    // Reopen: on-disk generation order must reproduce the shadowing.
    StorageNode reopened(config);
    const auto rows = reopened.query(k, 100, 100);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 99);
}

TEST(StorageNode, ReopenSweepsLeftoverTemporaries) {
    TempDir dir;
    NodeConfig config;
    config.data_dir = dir.str();
    config.commitlog_enabled = false;
    {
        StorageNode node(config);
        node.insert(make_key(1), 1, 1);
        node.flush();
    }
    // Simulate a crash mid-compaction: a half-written temporary.
    const std::string tmp = dir.str() + "/sstable-9.db.tmp";
    FILE* f = fopen(tmp.c_str(), "wb");
    fwrite("partial", 1, 7, f);
    fclose(f);

    StorageNode reopened(config);
    EXPECT_FALSE(fs::exists(tmp));
    EXPECT_EQ(reopened.query(make_key(1), 0, kTimestampMax).size(), 1u);
}

// --------------------------------------------------------------- cluster

TEST(Cluster, RoutesToPrimaryAndQueriesBack) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 4, 1, "hierarchy", 1u << 20, false});
    for (std::uint8_t tag = 0; tag < 32; ++tag) {
        const Key k = make_key(tag);
        cluster.insert(k, 100, tag);
        const auto rows = cluster.query(k, 0, kTimestampMax);
        ASSERT_EQ(rows.size(), 1u);
        EXPECT_EQ(rows[0].value, tag);
    }
}

TEST(Cluster, ReplicationWritesToMultipleNodes) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 3, 2, "murmur3", 1u << 20, false});
    const Key k = make_key(5);
    cluster.insert(k, 100, 55);
    // Both replicas hold the row.
    EXPECT_EQ(cluster.query_replica(0, k, 0, kTimestampMax).size(), 1u);
    EXPECT_EQ(cluster.query_replica(1, k, 0, kTimestampMax).size(), 1u);
    std::uint64_t writes = 0;
    for (const auto& ns : cluster.stats().per_node) writes += ns.writes;
    EXPECT_EQ(writes, 2u);
}

TEST(Cluster, HierarchyPartitionerGivesFullLocality) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 4, 1, "hierarchy", 1u << 20, false});
    // A writer colocated with the subtree's node always writes locally.
    const Key k = make_key(7);
    const int home = static_cast<int>(cluster.primary_node(k));
    for (int i = 0; i < 100; ++i) {
        Key kk = k;
        kk.sid[12] = static_cast<std::uint8_t>(i);  // vary the leaf level
        kk.bucket = static_cast<std::uint32_t>(i % 10);
        cluster.insert(kk, 100, 1, 0, home);
    }
    const auto stats = cluster.stats();
    EXPECT_EQ(stats.local_writes, 100u);
    EXPECT_EQ(stats.total_writes, 100u);
}

TEST(Cluster, Murmur3PartitionerHasPartialLocality) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 4, 1, "murmur3", 1u << 20, false});
    const Key base = make_key(7);
    const int home = static_cast<int>(cluster.primary_node(base));
    for (int i = 0; i < 200; ++i) {
        Key kk = base;
        kk.sid[12] = static_cast<std::uint8_t>(i);
        kk.bucket = static_cast<std::uint32_t>(i);
        cluster.insert(kk, 100, 1, 0, home);
    }
    const auto stats = cluster.stats();
    EXPECT_LT(stats.local_writes, stats.total_writes)
        << "hash partitioning cannot keep a subtree on one node";
}

TEST(Cluster, BackgroundMaintenanceMergesTiersWhileServing) {
    TempDir dir;
    ClusterConfig config;
    config.base_dir = dir.str();
    config.nodes = 1;
    config.commitlog_enabled = false;
    config.compaction_min_tables = 2;
    StoreCluster cluster(config);

    const Key k = make_key(1);
    for (int t = 0; t < 4; ++t) {
        for (TimestampNs ts = 1; ts <= 50; ++ts)
            cluster.insert(k, static_cast<TimestampNs>(t) * 1000 + ts, 1);
        cluster.flush_all();
    }
    ASSERT_EQ(cluster.stats().per_node[0].sstables, 4u);

    cluster.start_maintenance(std::chrono::milliseconds(2));
    EXPECT_TRUE(cluster.maintenance_running());
    cluster.start_maintenance(std::chrono::milliseconds(2));  // idempotent

    // Wait until the background thread has merged the tier (bounded).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (cluster.stats().per_node[0].sstables > 1 &&
           std::chrono::steady_clock::now() < deadline) {
        EXPECT_EQ(cluster.query(k, 0, kTimestampMax).size(), 200u);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cluster.stop_maintenance();
    EXPECT_FALSE(cluster.maintenance_running());
    cluster.stop_maintenance();  // idempotent

    const auto stats = cluster.stats();
    EXPECT_EQ(stats.per_node[0].sstables, 1u);
    EXPECT_GT(stats.per_node[0].compactions, 0u);
    EXPECT_GE(cluster.maintenance_rounds(), 1u);
    EXPECT_EQ(cluster.query(k, 0, kTimestampMax).size(), 200u);
}

TEST(Cluster, InvalidConfigThrows) {
    TempDir dir;
    EXPECT_THROW(StoreCluster({dir.str(), 0, 1, "murmur3", 1024, false}),
                 StoreError);
    EXPECT_THROW(StoreCluster({dir.str(), 2, 3, "murmur3", 1024, false}),
                 StoreError);
}

TEST(Cluster, InsertBatchRoutesPerEntryAndReplicates) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 3, 2, "murmur3", 1u << 20, false});
    std::vector<BatchEntry> batch;
    for (std::uint8_t tag = 0; tag < 5; ++tag)
        for (TimestampNs ts = 1; ts <= 4; ++ts)
            batch.push_back({make_key(tag), ts,
                             static_cast<Value>(tag * 100 + ts), 0});
    cluster.insert_batch(batch);

    for (std::uint8_t tag = 0; tag < 5; ++tag) {
        const Key k = make_key(tag);
        for (std::size_t r = 0; r < 2; ++r) {
            const auto rows = cluster.query_replica(r, k, 0, kTimestampMax);
            ASSERT_EQ(rows.size(), 4u) << "replica " << r << " tag "
                                       << int(tag);
            EXPECT_EQ(rows.back().value, tag * 100 + 4);
        }
    }
    const auto stats = cluster.stats();
    EXPECT_EQ(stats.total_writes, batch.size());
    std::uint64_t per_node = 0;
    for (const auto& ns : stats.per_node) per_node += ns.writes;
    EXPECT_EQ(per_node, batch.size() * 2);  // replication factor
}

// ------------------------------------------------------------- metastore

TEST(MetaStore, PutGetEraseInMemory) {
    MetaStore meta;
    meta.put("a", "1");
    meta.put("b", "2");
    EXPECT_EQ(meta.get("a").value(), "1");
    meta.erase("a");
    EXPECT_FALSE(meta.get("a").has_value());
    EXPECT_EQ(meta.size(), 1u);
}

TEST(MetaStore, PersistsAcrossReopen) {
    TempDir dir;
    const std::string path = dir.str() + "/meta.log";
    {
        MetaStore meta(path);
        meta.put("sensor//sys/node0/power/unit", "W");
        meta.put("sensor//sys/node0/power/scale", "0.001");
        meta.put("doomed", "x");
        meta.erase("doomed");
    }
    MetaStore meta(path);
    EXPECT_EQ(meta.get("sensor//sys/node0/power/unit").value(), "W");
    EXPECT_EQ(meta.size(), 2u);
    EXPECT_FALSE(meta.contains("doomed"));
}

TEST(MetaStore, EmptyValueIsNotATombstone) {
    TempDir dir;
    const std::string path = dir.str() + "/meta.log";
    {
        MetaStore meta(path);
        meta.put("empty", "");
    }
    MetaStore meta(path);
    ASSERT_TRUE(meta.get("empty").has_value());
    EXPECT_EQ(meta.get("empty").value(), "");
}

TEST(MetaStore, ScanPrefixSorted) {
    MetaStore meta;
    meta.put("vs//b", "2");
    meta.put("vs//a", "1");
    meta.put("other", "x");
    const auto hits = meta.scan_prefix("vs/");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].first, "vs//a");
    EXPECT_EQ(hits[1].first, "vs//b");
}

TEST(MetaStore, CompactPreservesContents) {
    TempDir dir;
    const std::string path = dir.str() + "/meta.log";
    {
        MetaStore meta(path);
        for (int i = 0; i < 100; ++i) meta.put("k", std::to_string(i));
        meta.compact();
    }
    MetaStore meta(path);
    EXPECT_EQ(meta.get("k").value(), "99");
}

// ------------------------------------------- cluster configuration sweep

struct ClusterParam {
    std::size_t nodes;
    std::size_t replication;
    const char* partitioner;
};

class ClusterSweep : public ::testing::TestWithParam<ClusterParam> {};

// Inserts must be retrievable from every replica under every supported
// cluster shape, with total write amplification = replication factor.
TEST_P(ClusterSweep, InsertQueryAcrossConfigurations) {
    const auto param = GetParam();
    TempDir dir;
    StoreCluster cluster({dir.str(), param.nodes, param.replication,
                          param.partitioner, 1u << 20, false});

    constexpr int kSensors = 24;
    constexpr int kReadings = 20;
    for (int s = 0; s < kSensors; ++s) {
        const Key k = make_key(static_cast<std::uint8_t>(s));
        for (int i = 1; i <= kReadings; ++i)
            cluster.insert(k, static_cast<TimestampNs>(i),
                           static_cast<Value>(s * 1000 + i));
    }
    cluster.flush_all();
    cluster.compact_all();

    std::uint64_t total_writes = 0;
    for (const auto& ns : cluster.stats().per_node) total_writes += ns.writes;
    EXPECT_EQ(total_writes,
              static_cast<std::uint64_t>(kSensors) * kReadings *
                  param.replication);

    for (int s = 0; s < kSensors; ++s) {
        const Key k = make_key(static_cast<std::uint8_t>(s));
        for (std::size_t r = 0; r < param.replication; ++r) {
            const auto rows = cluster.query_replica(r, k, 0, kTimestampMax);
            ASSERT_EQ(rows.size(), static_cast<std::size_t>(kReadings))
                << "replica " << r << " sensor " << s;
            EXPECT_EQ(rows.back().value, s * 1000 + kReadings);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterSweep,
    ::testing::Values(ClusterParam{1, 1, "hierarchy"},
                      ClusterParam{2, 1, "murmur3"},
                      ClusterParam{3, 2, "hierarchy"},
                      ClusterParam{4, 3, "murmur3"},
                      ClusterParam{5, 1, "hierarchy"},
                      ClusterParam{8, 2, "murmur3"}));

}  // namespace
}  // namespace dcdb::store
