// Tests for the wide-column store substrate: murmur hashing, bloom
// filters, partitioners, memtable, SSTables, commit log, storage node and
// the multi-node cluster (replication, locality, TTL, compaction,
// crash recovery).
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "store/bloom.hpp"
#include "store/cluster.hpp"
#include "store/commitlog.hpp"
#include "store/memtable.hpp"
#include "store/metastore.hpp"
#include "store/murmur.hpp"
#include "store/node.hpp"
#include "store/partitioner.hpp"
#include "store/sstable.hpp"

namespace dcdb::store {
namespace {

namespace fs = std::filesystem;

class TempDir {
  public:
    TempDir() {
        static std::atomic<int> counter{0};
        path_ = fs::temp_directory_path() /
                ("dcdb_store_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1)));
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

Key make_key(std::uint8_t tag, std::uint32_t bucket = 0) {
    Key k;
    k.sid.fill(0);
    k.sid[0] = tag;
    k.sid[15] = tag;
    k.bucket = bucket;
    return k;
}

std::span<const std::uint8_t> bytes_of(const std::string& s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ---------------------------------------------------------------- murmur

TEST(Murmur, DeterministicAndSeedSensitive) {
    const std::string data = "the quick brown fox";
    const auto a = murmur3_x64_128(bytes_of(data));
    const auto b = murmur3_x64_128(bytes_of(data));
    const auto c = murmur3_x64_128(bytes_of(data), 1);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Murmur, AllTailLengthsDiffer) {
    // Exercise every switch-case tail path (lengths 0..16).
    std::set<std::uint64_t> seen;
    std::string s;
    for (int len = 0; len <= 16; ++len) {
        seen.insert(murmur3_token(bytes_of(s)));
        s.push_back(static_cast<char>('a' + len));
    }
    EXPECT_EQ(seen.size(), 17u);
}

TEST(Murmur, TokenDistributionIsRoughlyUniform) {
    constexpr int kNodes = 8;
    constexpr int kKeys = 8000;
    std::array<int, kNodes> counts{};
    for (int i = 0; i < kKeys; ++i) {
        const std::string key = "sensor-" + std::to_string(i);
        counts[murmur3_token(bytes_of(key)) % kNodes]++;
    }
    for (const int c : counts) {
        EXPECT_GT(c, kKeys / kNodes / 2);
        EXPECT_LT(c, kKeys / kNodes * 2);
    }
}

// ----------------------------------------------------------------- bloom

TEST(Bloom, NoFalseNegatives) {
    BloomFilter bloom(1000, 0.01);
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "key" + std::to_string(i);
        bloom.insert(bytes_of(key));
    }
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "key" + std::to_string(i);
        EXPECT_TRUE(bloom.may_contain(bytes_of(key)));
    }
}

TEST(Bloom, FalsePositiveRateNearTarget) {
    BloomFilter bloom(2000, 0.01);
    for (int i = 0; i < 2000; ++i) {
        const std::string key = "in" + std::to_string(i);
        bloom.insert(bytes_of(key));
    }
    int fp = 0;
    const int probes = 10000;
    for (int i = 0; i < probes; ++i) {
        const std::string key = "out" + std::to_string(i);
        if (bloom.may_contain(bytes_of(key))) ++fp;
    }
    EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(Bloom, SerializedStateRoundTrips) {
    BloomFilter a(100);
    const std::string key = "present";
    a.insert(bytes_of(key));
    BloomFilter b(a.bits(), a.hash_count());
    EXPECT_TRUE(b.may_contain(bytes_of(key)));
}

// ----------------------------------------------------------- partitioner

TEST(Partitioner, HierarchyKeepsSubtreesTogether) {
    HierarchyPartitioner part(4);
    // Same 4-byte prefix, different leaves and buckets -> same node.
    Key a = make_key(1, 0);
    Key b = make_key(1, 99);
    b.sid[10] = 200;  // deep level differs
    for (std::size_t nodes : {2u, 3u, 7u, 16u}) {
        EXPECT_EQ(part.node_for(a, nodes), part.node_for(b, nodes));
    }
}

TEST(Partitioner, HierarchySeparatesDifferentSubtrees) {
    HierarchyPartitioner part(4);
    std::set<std::size_t> nodes_hit;
    for (std::uint8_t tag = 0; tag < 64; ++tag)
        nodes_hit.insert(part.node_for(make_key(tag), 8));
    EXPECT_GT(nodes_hit.size(), 4u) << "subtrees should spread over nodes";
}

TEST(Partitioner, Murmur3SpreadsBuckets) {
    Murmur3Partitioner part;
    // Same sensor, different time buckets spread over nodes (no locality).
    std::set<std::size_t> nodes_hit;
    for (std::uint32_t bucket = 0; bucket < 64; ++bucket)
        nodes_hit.insert(part.node_for(make_key(1, bucket), 8));
    EXPECT_GT(nodes_hit.size(), 4u);
}

TEST(Partitioner, FactoryRejectsUnknownName) {
    EXPECT_NO_THROW(make_partitioner("murmur3"));
    EXPECT_NO_THROW(make_partitioner("hierarchy"));
    EXPECT_THROW(make_partitioner("vogon"), StoreError);
}

// -------------------------------------------------------------- memtable

TEST(Memtable, InsertAndRangeQuery) {
    Memtable mt;
    const Key k = make_key(1);
    for (TimestampNs ts = 100; ts <= 1000; ts += 100)
        mt.insert(k, Row{ts, static_cast<Value>(ts * 2), 0});
    std::vector<Row> out;
    mt.query(k, 300, 700, out);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out.front().ts, 300u);
    EXPECT_EQ(out.back().ts, 700u);
    EXPECT_EQ(out[0].value, 600);
}

TEST(Memtable, OutOfOrderInsertIsSorted) {
    Memtable mt;
    const Key k = make_key(1);
    mt.insert(k, Row{500, 5, 0});
    mt.insert(k, Row{100, 1, 0});
    mt.insert(k, Row{300, 3, 0});
    std::vector<Row> out;
    mt.query(k, 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].ts, 100u);
    EXPECT_EQ(out[1].ts, 300u);
    EXPECT_EQ(out[2].ts, 500u);
}

TEST(Memtable, SameTimestampUpserts) {
    Memtable mt;
    const Key k = make_key(1);
    mt.insert(k, Row{100, 1, 0});
    mt.insert(k, Row{100, 2, 0});
    std::vector<Row> out;
    mt.query(k, 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 2);
}

TEST(Memtable, SeparateKeysAreIsolated) {
    Memtable mt;
    mt.insert(make_key(1), Row{100, 1, 0});
    mt.insert(make_key(2), Row{100, 2, 0});
    std::vector<Row> out;
    mt.query(make_key(1), 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 1);
}

TEST(Memtable, ApproxBytesGrows) {
    Memtable mt;
    const std::size_t before = mt.approx_bytes();
    for (int i = 0; i < 100; ++i)
        mt.insert(make_key(1), Row{static_cast<TimestampNs>(i), 0, 0});
    EXPECT_GT(mt.approx_bytes(), before + 100 * Row::kBytes - 1);
}

// --------------------------------------------------------------- sstable

TEST(SsTable, WriteOpenQuery) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    const Key k = make_key(3);
    for (TimestampNs ts = 10; ts <= 100; ts += 10)
        parts[k].push_back(Row{ts, static_cast<Value>(ts), 0});
    auto table = SsTable::write(dir.str() + "/t.db", 1, parts);

    std::vector<Row> out;
    table->query(k, 30, 60, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].ts, 30u);
    EXPECT_EQ(out[3].ts, 60u);
    EXPECT_EQ(table->generation(), 1u);
    EXPECT_EQ(table->row_count(), 10u);
}

TEST(SsTable, ReopenFromDiskPreservesData) {
    TempDir dir;
    const std::string path = dir.str() + "/t.db";
    {
        std::map<Key, std::vector<Row>> parts;
        parts[make_key(1)] = {Row{5, 50, 0}, Row{6, 60, 0}};
        parts[make_key(2)] = {Row{7, 70, 0}};
        SsTable::write(path, 9, parts);
    }
    auto table = SsTable::open(path);
    EXPECT_EQ(table->generation(), 9u);
    EXPECT_EQ(table->partition_count(), 2u);
    std::vector<Row> out;
    table->query(make_key(2), 0, kTimestampMax, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 70);
}

TEST(SsTable, MissingKeyReturnsNothing) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    parts[make_key(1)] = {Row{1, 1, 0}};
    auto table = SsTable::write(dir.str() + "/t.db", 1, parts);
    std::vector<Row> out;
    table->query(make_key(99), 0, kTimestampMax, out);
    EXPECT_TRUE(out.empty());
}

TEST(SsTable, LargePartitionBinarySearch) {
    TempDir dir;
    std::map<Key, std::vector<Row>> parts;
    const Key k = make_key(1);
    for (TimestampNs ts = 0; ts < 20000; ++ts)
        parts[k].push_back(Row{ts, static_cast<Value>(ts), 0});
    auto table = SsTable::write(dir.str() + "/big.db", 1, parts);
    std::vector<Row> out;
    table->query(k, 9999, 10001, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1].ts, 10000u);
}

TEST(SsTable, CorruptFileIsRejected) {
    TempDir dir;
    const std::string path = dir.str() + "/junk.db";
    FILE* f = fopen(path.c_str(), "wb");
    const char junk[] = "this is not an sstable, not even close......";
    fwrite(junk, 1, sizeof junk, f);
    fclose(f);
    EXPECT_THROW(SsTable::open(path), StoreError);
}

// ------------------------------------------------------------- commitlog

TEST(CommitLog, AppendAndReplay) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    {
        CommitLog log(path);
        log.append(make_key(1), Row{10, 100, 0});
        log.append(make_key(2), Row{20, 200, 7});
        log.sync();
    }
    std::vector<std::pair<Key, Row>> seen;
    const auto n = CommitLog::replay(
        path, [&](const Key& k, const Row& r) { seen.emplace_back(k, r); });
    EXPECT_EQ(n.records, 2u);
    EXPECT_EQ(n.valid_bytes, fs::file_size(path));
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, make_key(1));
    EXPECT_EQ(seen[1].second.value, 200);
    EXPECT_EQ(seen[1].second.expiry_s, 7u);
}

TEST(CommitLog, ReplayStopsAtCorruptTail) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    {
        CommitLog log(path);
        log.append(make_key(1), Row{10, 100, 0});
        log.sync();
    }
    // Simulate a torn write: append garbage.
    FILE* f = fopen(path.c_str(), "ab");
    fwrite("garbage", 1, 7, f);
    fclose(f);

    std::uint64_t count = 0;
    CommitLog::replay(path, [&](const Key&, const Row&) { ++count; });
    EXPECT_EQ(count, 1u);
}

TEST(CommitLog, ResetTruncates) {
    TempDir dir;
    const std::string path = dir.str() + "/commit.log";
    CommitLog log(path);
    log.append(make_key(1), Row{10, 100, 0});
    log.reset();
    log.sync();
    std::uint64_t count = 0;
    CommitLog::replay(path, [&](const Key&, const Row&) { ++count; });
    EXPECT_EQ(count, 0u);
}

// ---------------------------------------------------------- storage node

TEST(StorageNode, InsertQueryAcrossFlush) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, true});
    const Key k = make_key(1);
    for (TimestampNs ts = 1; ts <= 100; ++ts)
        node.insert(k, ts, static_cast<Value>(ts * 10));
    node.flush();
    for (TimestampNs ts = 101; ts <= 200; ++ts)
        node.insert(k, ts, static_cast<Value>(ts * 10));

    // Query spans SSTable + memtable.
    const auto rows = node.query(k, 50, 150);
    ASSERT_EQ(rows.size(), 101u);
    EXPECT_EQ(rows.front().ts, 50u);
    EXPECT_EQ(rows.back().ts, 150u);
    EXPECT_EQ(rows.back().value, 1500);
}

TEST(StorageNode, NewerWriteShadowsOlderAcrossGenerations) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, true});
    const Key k = make_key(1);
    node.insert(k, 100, 1);
    node.flush();
    node.insert(k, 100, 2);  // same clustering key, newer write
    node.flush();
    auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);

    node.compact();
    rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);
    EXPECT_EQ(node.stats().sstables, 1u);
}

TEST(StorageNode, AutomaticFlushOnThreshold) {
    TempDir dir;
    StorageNode node({dir.str(), /*flush at*/ 4096, true});
    const Key k = make_key(1);
    for (TimestampNs ts = 1; ts <= 2000; ++ts) node.insert(k, ts, 1);
    EXPECT_GT(node.stats().flushes, 0u);
    EXPECT_EQ(node.query(k, 0, kTimestampMax).size(), 2000u);
}

TEST(StorageNode, TtlExpiresRows) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, false});
    const Key k = make_key(1);
    const TimestampNs now = now_ns();
    // Row whose expiry is already in the past vs one far in the future.
    node.insert(k, now - 10 * kNsPerSec, 1, /*ttl_s=*/1);
    node.insert(k, now, 2, /*ttl_s=*/3600);
    const auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);
}

TEST(StorageNode, CompactionDropsExpired) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, false});
    const Key k = make_key(1);
    const TimestampNs past = now_ns() - 100 * kNsPerSec;
    node.insert(k, past, 1, /*ttl_s=*/1);
    node.insert(k, past + 1, 2, /*ttl_s=*/0);
    node.flush();
    node.compact();
    const auto stats = node.stats();
    EXPECT_EQ(stats.sstables, 1u);
    const auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 2);
}

TEST(StorageNode, TruncateBeforeDropsOldData) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 20, false});
    const Key k = make_key(1);
    for (TimestampNs ts = 1; ts <= 100; ++ts) node.insert(k, ts, 1);
    node.truncate_before(51);
    const auto rows = node.query(k, 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 50u);
    EXPECT_EQ(rows.front().ts, 51u);
}

TEST(StorageNode, CrashRecoveryViaCommitLog) {
    TempDir dir;
    {
        StorageNode node({dir.str(), 1u << 20, true});
        node.insert(make_key(1), 100, 42);
        node.insert(make_key(1), 101, 43);
        // "Crash": destructor without flush; commit log holds the data.
    }
    StorageNode recovered({dir.str(), 1u << 20, true});
    const auto rows = recovered.query(make_key(1), 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].value, 42);
    EXPECT_EQ(rows[1].value, 43);
}

TEST(StorageNode, RestartAfterFlushReopensSsTables) {
    TempDir dir;
    {
        StorageNode node({dir.str(), 1u << 20, true});
        node.insert(make_key(1), 100, 42);
        node.flush();
    }
    StorageNode recovered({dir.str(), 1u << 20, true});
    const auto rows = recovered.query(make_key(1), 0, kTimestampMax);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 42);
}

TEST(StorageNode, ConcurrentWritersAndReaders) {
    TempDir dir;
    StorageNode node({dir.str(), 1u << 18, false});
    constexpr int kWriters = 4;
    constexpr int kRowsEach = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kWriters + 1);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&node, w] {
            const Key k = make_key(static_cast<std::uint8_t>(w));
            for (int i = 1; i <= kRowsEach; ++i)
                node.insert(k, static_cast<TimestampNs>(i), i);
        });
    }
    threads.emplace_back([&node] {
        for (int i = 0; i < 50; ++i) {
            (void)node.query(make_key(0), 0, kTimestampMax);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    for (auto& t : threads) t.join();
    for (int w = 0; w < kWriters; ++w) {
        EXPECT_EQ(node.query(make_key(static_cast<std::uint8_t>(w)), 0,
                             kTimestampMax)
                      .size(),
                  static_cast<std::size_t>(kRowsEach));
    }
}

// --------------------------------------------------------------- cluster

TEST(Cluster, RoutesToPrimaryAndQueriesBack) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 4, 1, "hierarchy", 1u << 20, false});
    for (std::uint8_t tag = 0; tag < 32; ++tag) {
        const Key k = make_key(tag);
        cluster.insert(k, 100, tag);
        const auto rows = cluster.query(k, 0, kTimestampMax);
        ASSERT_EQ(rows.size(), 1u);
        EXPECT_EQ(rows[0].value, tag);
    }
}

TEST(Cluster, ReplicationWritesToMultipleNodes) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 3, 2, "murmur3", 1u << 20, false});
    const Key k = make_key(5);
    cluster.insert(k, 100, 55);
    // Both replicas hold the row.
    EXPECT_EQ(cluster.query_replica(0, k, 0, kTimestampMax).size(), 1u);
    EXPECT_EQ(cluster.query_replica(1, k, 0, kTimestampMax).size(), 1u);
    std::uint64_t writes = 0;
    for (const auto& ns : cluster.stats().per_node) writes += ns.writes;
    EXPECT_EQ(writes, 2u);
}

TEST(Cluster, HierarchyPartitionerGivesFullLocality) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 4, 1, "hierarchy", 1u << 20, false});
    // A writer colocated with the subtree's node always writes locally.
    const Key k = make_key(7);
    const int home = static_cast<int>(cluster.primary_node(k));
    for (int i = 0; i < 100; ++i) {
        Key kk = k;
        kk.sid[12] = static_cast<std::uint8_t>(i);  // vary the leaf level
        kk.bucket = static_cast<std::uint32_t>(i % 10);
        cluster.insert(kk, 100, 1, 0, home);
    }
    const auto stats = cluster.stats();
    EXPECT_EQ(stats.local_writes, 100u);
    EXPECT_EQ(stats.total_writes, 100u);
}

TEST(Cluster, Murmur3PartitionerHasPartialLocality) {
    TempDir dir;
    StoreCluster cluster({dir.str(), 4, 1, "murmur3", 1u << 20, false});
    const Key base = make_key(7);
    const int home = static_cast<int>(cluster.primary_node(base));
    for (int i = 0; i < 200; ++i) {
        Key kk = base;
        kk.sid[12] = static_cast<std::uint8_t>(i);
        kk.bucket = static_cast<std::uint32_t>(i);
        cluster.insert(kk, 100, 1, 0, home);
    }
    const auto stats = cluster.stats();
    EXPECT_LT(stats.local_writes, stats.total_writes)
        << "hash partitioning cannot keep a subtree on one node";
}

TEST(Cluster, InvalidConfigThrows) {
    TempDir dir;
    EXPECT_THROW(StoreCluster({dir.str(), 0, 1, "murmur3", 1024, false}),
                 StoreError);
    EXPECT_THROW(StoreCluster({dir.str(), 2, 3, "murmur3", 1024, false}),
                 StoreError);
}

// ------------------------------------------------------------- metastore

TEST(MetaStore, PutGetEraseInMemory) {
    MetaStore meta;
    meta.put("a", "1");
    meta.put("b", "2");
    EXPECT_EQ(meta.get("a").value(), "1");
    meta.erase("a");
    EXPECT_FALSE(meta.get("a").has_value());
    EXPECT_EQ(meta.size(), 1u);
}

TEST(MetaStore, PersistsAcrossReopen) {
    TempDir dir;
    const std::string path = dir.str() + "/meta.log";
    {
        MetaStore meta(path);
        meta.put("sensor//sys/node0/power/unit", "W");
        meta.put("sensor//sys/node0/power/scale", "0.001");
        meta.put("doomed", "x");
        meta.erase("doomed");
    }
    MetaStore meta(path);
    EXPECT_EQ(meta.get("sensor//sys/node0/power/unit").value(), "W");
    EXPECT_EQ(meta.size(), 2u);
    EXPECT_FALSE(meta.contains("doomed"));
}

TEST(MetaStore, EmptyValueIsNotATombstone) {
    TempDir dir;
    const std::string path = dir.str() + "/meta.log";
    {
        MetaStore meta(path);
        meta.put("empty", "");
    }
    MetaStore meta(path);
    ASSERT_TRUE(meta.get("empty").has_value());
    EXPECT_EQ(meta.get("empty").value(), "");
}

TEST(MetaStore, ScanPrefixSorted) {
    MetaStore meta;
    meta.put("vs//b", "2");
    meta.put("vs//a", "1");
    meta.put("other", "x");
    const auto hits = meta.scan_prefix("vs/");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].first, "vs//a");
    EXPECT_EQ(hits[1].first, "vs//b");
}

TEST(MetaStore, CompactPreservesContents) {
    TempDir dir;
    const std::string path = dir.str() + "/meta.log";
    {
        MetaStore meta(path);
        for (int i = 0; i < 100; ++i) meta.put("k", std::to_string(i));
        meta.compact();
    }
    MetaStore meta(path);
    EXPECT_EQ(meta.get("k").value(), "99");
}

// ------------------------------------------- cluster configuration sweep

struct ClusterParam {
    std::size_t nodes;
    std::size_t replication;
    const char* partitioner;
};

class ClusterSweep : public ::testing::TestWithParam<ClusterParam> {};

// Inserts must be retrievable from every replica under every supported
// cluster shape, with total write amplification = replication factor.
TEST_P(ClusterSweep, InsertQueryAcrossConfigurations) {
    const auto param = GetParam();
    TempDir dir;
    StoreCluster cluster({dir.str(), param.nodes, param.replication,
                          param.partitioner, 1u << 20, false});

    constexpr int kSensors = 24;
    constexpr int kReadings = 20;
    for (int s = 0; s < kSensors; ++s) {
        const Key k = make_key(static_cast<std::uint8_t>(s));
        for (int i = 1; i <= kReadings; ++i)
            cluster.insert(k, static_cast<TimestampNs>(i),
                           static_cast<Value>(s * 1000 + i));
    }
    cluster.flush_all();
    cluster.compact_all();

    std::uint64_t total_writes = 0;
    for (const auto& ns : cluster.stats().per_node) total_writes += ns.writes;
    EXPECT_EQ(total_writes,
              static_cast<std::uint64_t>(kSensors) * kReadings *
                  param.replication);

    for (int s = 0; s < kSensors; ++s) {
        const Key k = make_key(static_cast<std::uint8_t>(s));
        for (std::size_t r = 0; r < param.replication; ++r) {
            const auto rows = cluster.query_replica(r, k, 0, kTimestampMax);
            ASSERT_EQ(rows.size(), static_cast<std::size_t>(kReadings))
                << "replica " << r << " sensor " << s;
            EXPECT_EQ(rows.back().value, s * 1000 + kReadings);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterSweep,
    ::testing::Values(ClusterParam{1, 1, "hierarchy"},
                      ClusterParam{2, 1, "murmur3"},
                      ClusterParam{3, 2, "hierarchy"},
                      ClusterParam{4, 3, "murmur3"},
                      ClusterParam{5, 1, "hierarchy"},
                      ClusterParam{8, 2, "murmur3"}));

}  // namespace
}  // namespace dcdb::store
