// Tests for the core sensor model: SIDs and the topic dictionary, reading
// payload codec, sensor caches and the hierarchy navigator.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/error.hpp"
#include "core/hierarchy.hpp"
#include "core/metadata.hpp"
#include "core/payload.hpp"
#include "core/sensor_cache.hpp"
#include "core/sensor_id.hpp"

namespace dcdb {
namespace {

// ------------------------------------------------------------------ SIDs

TEST(SensorId, LevelBitfieldAccess) {
    SensorId sid;
    sid.set_level(0, 0x0102);
    sid.set_level(7, 0xBEEF);
    EXPECT_EQ(sid.level(0), 0x0102);
    EXPECT_EQ(sid.level(7), 0xBEEF);
    EXPECT_EQ(sid.bytes[0], 0x01);
    EXPECT_EQ(sid.bytes[1], 0x02);
    EXPECT_EQ(sid.bytes[14], 0xBE);
    EXPECT_EQ(sid.bytes[15], 0xEF);
}

TEST(SensorId, HexIs32Chars) {
    SensorId sid;
    sid.set_level(0, 1);
    EXPECT_EQ(sid.hex().size(), 32u);
    EXPECT_EQ(sid.hex().substr(0, 4), "0001");
}

TEST(TopicMapper, MappingIsBijective) {
    store::MetaStore meta;
    TopicMapper mapper(meta);
    const std::vector<std::string> topics = {
        "/lrz/coolmuc3/rack0/node0/cpu0/instructions",
        "/lrz/coolmuc3/rack0/node0/cpu0/cycles",
        "/lrz/coolmuc3/rack0/node1/cpu0/instructions",
        "/lrz/coolmuc2/rack5/node3/power",
        "/facility/chillers/chiller1/inlet_temp",
    };
    std::set<std::string> hexes;
    for (const auto& topic : topics) {
        const SensorId sid = mapper.to_sid(topic);
        hexes.insert(sid.hex());
        EXPECT_EQ(mapper.to_topic(sid), topic);
    }
    EXPECT_EQ(hexes.size(), topics.size()) << "SIDs must be unique";
    EXPECT_EQ(mapper.known_topics(), topics.size());
}

TEST(TopicMapper, SameTopicAlwaysSameSid) {
    store::MetaStore meta;
    TopicMapper mapper(meta);
    const auto a = mapper.to_sid("/sys/node0/power");
    const auto b = mapper.to_sid("/sys/node0/power");
    const auto c = mapper.to_sid("sys/node0//power/");  // unnormalized
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
}

TEST(TopicMapper, SharedComponentsShareLevelIds) {
    store::MetaStore meta;
    TopicMapper mapper(meta);
    const auto a = mapper.to_sid("/sys/node0/power");
    const auto b = mapper.to_sid("/sys/node1/power");
    EXPECT_EQ(a.level(0), b.level(0)) << "'sys' id shared at level 0";
    EXPECT_NE(a.level(1), b.level(1));
    // 'power' appears at the same depth in both topics.
    EXPECT_EQ(a.level(2), b.level(2));
}

TEST(TopicMapper, SubtreePrefixSharesSidPrefix) {
    // The property the hierarchy partitioner depends on: same hierarchy
    // prefix => same SID byte prefix.
    store::MetaStore meta;
    TopicMapper mapper(meta);
    const auto a = mapper.to_sid("/lrz/sng/rack1/node1/power");
    const auto b = mapper.to_sid("/lrz/sng/rack1/node2/temp");
    EXPECT_TRUE(std::equal(a.bytes.begin(), a.bytes.begin() + 6,
                           b.bytes.begin()));
}

TEST(TopicMapper, PersistsAcrossRestart) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "dcdb_mapper_test.log").string();
    fs::remove(path);
    SensorId original;
    {
        store::MetaStore meta(path);
        TopicMapper mapper(meta);
        original = mapper.to_sid("/sys/node0/power");
    }
    {
        store::MetaStore meta(path);
        TopicMapper mapper(meta);
        EXPECT_EQ(mapper.to_sid("/sys/node0/power"), original);
        EXPECT_EQ(mapper.to_topic(original), "/sys/node0/power");
        EXPECT_EQ(mapper.known_topics(), 1u);
    }
    fs::remove(path);
}

TEST(TopicMapper, RejectsTooDeepTopics) {
    store::MetaStore meta;
    TopicMapper mapper(meta);
    EXPECT_THROW(mapper.to_sid("/a/b/c/d/e/f/g/h/i"), Error);
    EXPECT_NO_THROW(mapper.to_sid("/a/b/c/d/e/f/g/h"));
}

TEST(TopicMapper, LookupDoesNotAllocate) {
    store::MetaStore meta;
    TopicMapper mapper(meta);
    SensorId sid;
    EXPECT_FALSE(mapper.lookup("/never/seen", sid));
    mapper.to_sid("/seen/once");
    EXPECT_TRUE(mapper.lookup("/seen/once", sid));
    EXPECT_EQ(mapper.known_topics(), 1u);
}

TEST(TopicMapper, ConcurrentMappingIsConsistent) {
    store::MetaStore meta;
    TopicMapper mapper(meta);
    constexpr int kThreads = 8;
    std::vector<SensorId> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&mapper, &results, t] {
            for (int i = 0; i < 200; ++i)
                results[t] = mapper.to_sid("/contended/topic");
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);
}

TEST(SensorKey, BucketsSplitTimeSeries) {
    SensorId sid;
    sid.set_level(0, 1);
    const TimestampNs t0 = 5 * kBucketWidthNs + 1;
    const TimestampNs t1 = 6 * kBucketWidthNs + 1;
    EXPECT_EQ(sensor_key(sid, t0).bucket + 1, sensor_key(sid, t1).bucket);
    EXPECT_EQ(sensor_key(sid, t0).sid, sid.bytes);
}

// --------------------------------------------------------------- payload

TEST(Payload, RoundTrip) {
    std::vector<Reading> readings;
    for (int i = 0; i < 100; ++i)
        readings.push_back(
            {static_cast<TimestampNs>(1000 + i), static_cast<Value>(-i)});
    const auto bytes = encode_readings(readings);
    EXPECT_EQ(bytes.size(), 100 * kReadingWireBytes);
    const auto decoded = decode_readings(bytes);
    EXPECT_EQ(decoded, readings);
}

TEST(Payload, EmptyPayload) {
    EXPECT_TRUE(decode_readings(encode_readings({})).empty());
}

TEST(Payload, RejectsTruncatedPayload) {
    std::vector<std::uint8_t> bad(17, 0);
    EXPECT_THROW(decode_readings(bad), ProtocolError);
}

TEST(Payload, NegativeValuesSurvive) {
    const std::vector<Reading> readings = {
        {42, std::numeric_limits<Value>::min()},
        {43, std::numeric_limits<Value>::max()}};
    EXPECT_EQ(decode_readings(encode_readings(readings)), readings);
}

// ----------------------------------------------------------------- cache

TEST(SensorCache, LatestAndWindowView) {
    SensorCache cache(100 * kNsPerSec, kNsPerSec);
    for (TimestampNs t = 1; t <= 50; ++t)
        cache.push({t * kNsPerSec, static_cast<Value>(t)});
    ASSERT_TRUE(cache.latest().has_value());
    EXPECT_EQ(cache.latest()->value, 50);
    const auto view = cache.view(10 * kNsPerSec, 20 * kNsPerSec);
    ASSERT_EQ(view.size(), 11u);
    EXPECT_EQ(view.front().value, 10);
    EXPECT_EQ(view.back().value, 20);
}

TEST(SensorCache, EvictsOutsideWindow) {
    SensorCache cache(10 * kNsPerSec, kNsPerSec);
    for (TimestampNs t = 1; t <= 1000; ++t)
        cache.push({t * kNsPerSec, static_cast<Value>(t)});
    // Ring bounded by window/interval, not by total pushes.
    EXPECT_LE(cache.size(), 16u);
    EXPECT_EQ(cache.latest()->value, 1000);
}

TEST(SensorCache, GrowsWhenIntervalHintTooCoarse) {
    // Hint says 1s sampling but actual is 10ms: ring must grow, not drop.
    SensorCache cache(kNsPerSec, kNsPerSec);
    const TimestampNs base = 100 * kNsPerSec;
    for (int i = 0; i < 100; ++i)
        cache.push({base + static_cast<TimestampNs>(i) * 10 * kNsPerMs,
                    static_cast<Value>(i)});
    EXPECT_EQ(cache.size(), 100u);
    EXPECT_EQ(cache.view(0, kTimestampMax).size(), 100u);
}

TEST(SensorCache, GrowsForTimestampsSmallerThanWindow) {
    // Early-boot / test clocks: every timestamp is smaller than the
    // window, so everything is in-window and nothing may be evicted. The
    // unsigned window-start subtraction must not underflow and force
    // eviction instead of growth.
    SensorCache cache(100 * kNsPerSec, 50 * kNsPerSec);  // tiny ring
    for (TimestampNs t = 1; t <= 50; ++t)
        cache.push({t, static_cast<Value>(t)});
    EXPECT_EQ(cache.size(), 50u);
    const auto view = cache.view(0, kTimestampMax);
    ASSERT_EQ(view.size(), 50u);
    EXPECT_EQ(view.front().value, 1);
    EXPECT_EQ(view.back().value, 50);
}

TEST(SensorCache, AverageOverHorizon) {
    SensorCache cache(100 * kNsPerSec, kNsPerSec);
    for (TimestampNs t = 1; t <= 10; ++t)
        cache.push({t * kNsPerSec, 10});
    cache.push({11 * kNsPerSec, 40});
    // Horizon 0 -> only the latest reading.
    EXPECT_DOUBLE_EQ(cache.average(0).value(), 40.0);
    EXPECT_NEAR(cache.average(kTimestampMax).value(), (10 * 10 + 40) / 11.0,
                1e-9);
}

TEST(SensorCache, EmptyCacheBehaviour) {
    SensorCache cache;
    EXPECT_FALSE(cache.latest().has_value());
    EXPECT_FALSE(cache.average(kNsPerSec).has_value());
    EXPECT_TRUE(cache.view(0, kTimestampMax).empty());
}

TEST(CacheSet, PerTopicIsolationAndListing) {
    CacheSet set(60 * kNsPerSec);
    set.push("/b/t1", {1, 10});
    set.push("/a/t0", {1, 20});
    set.push("/b/t1", {2, 11});
    EXPECT_EQ(set.sensor_count(), 2u);
    EXPECT_EQ(set.latest("/b/t1")->value, 11);
    EXPECT_EQ(set.latest("/a/t0")->value, 20);
    EXPECT_FALSE(set.latest("/nope").has_value());
    const auto topics = set.topics();
    ASSERT_EQ(topics.size(), 2u);
    EXPECT_EQ(topics[0], "/a/t0");  // sorted
}

TEST(CacheSet, MemoryAccountingScalesWithSensors) {
    CacheSet small(60 * kNsPerSec);
    CacheSet large(60 * kNsPerSec);
    for (int i = 0; i < 10; ++i)
        small.push("/s" + std::to_string(i), {1, 1});
    for (int i = 0; i < 1000; ++i)
        large.push("/s" + std::to_string(i), {1, 1});
    EXPECT_GT(large.memory_bytes(), 10 * small.memory_bytes());
}

TEST(CacheSet, ConcurrentPushers) {
    CacheSet set(60 * kNsPerSec);
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&set, t] {
            for (int i = 0; i < 1000; ++i)
                set.push("/thread" + std::to_string(t),
                         {static_cast<TimestampNs>(i + 1), i});
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(set.sensor_count(), 4u);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(set.latest("/thread" + std::to_string(t))->value, 999);
}

// -------------------------------------------------------------- metadata

TEST(Metadata, SerializeRoundTrip) {
    SensorMetadata md;
    md.topic = "/sys/node0/power";
    md.unit = "mW";
    md.scale = 0.001;
    md.interval_ns = kNsPerSec;
    md.ttl_s = 86400;
    md.monotonic = true;
    const auto back =
        SensorMetadata::deserialize(md.topic, md.serialize());
    EXPECT_EQ(back.unit, "mW");
    EXPECT_DOUBLE_EQ(back.scale, 0.001);
    EXPECT_EQ(back.interval_ns, kNsPerSec);
    EXPECT_EQ(back.ttl_s, 86400u);
    EXPECT_TRUE(back.monotonic);
    EXPECT_FALSE(back.is_virtual);
}

TEST(Metadata, VirtualSensorExpressionSurvives) {
    SensorMetadata md;
    md.topic = "/virtual/pue";
    md.is_virtual = true;
    md.expression = "/fac/total_power / /sys/it_power";
    const auto back = SensorMetadata::deserialize(md.topic, md.serialize());
    EXPECT_TRUE(back.is_virtual);
    EXPECT_EQ(back.expression, "/fac/total_power / /sys/it_power");
}

TEST(Metadata, StorePublishListUnpublish) {
    store::MetaStore meta;
    MetadataStore mds(meta);
    SensorMetadata a;
    a.topic = "/sys/node0/power";
    a.unit = "W";
    mds.publish(a);
    SensorMetadata b;
    b.topic = "/sys/node1/power";
    b.unit = "W";
    mds.publish(b);

    ASSERT_TRUE(mds.get("/sys/node0/power").has_value());
    EXPECT_EQ(mds.get("/sys/node0/power")->unit, "W");
    EXPECT_EQ(mds.list("/sys").size(), 2u);
    EXPECT_EQ(mds.list().size(), 2u);
    mds.unpublish("/sys/node0/power");
    EXPECT_FALSE(mds.get("/sys/node0/power").has_value());
    EXPECT_EQ(mds.list().size(), 1u);
}

// ------------------------------------------------------------- hierarchy

TEST(SensorTree, ChildrenPerLevel) {
    SensorTree tree;
    tree.add("/lrz/sng/rack0/node0/power");
    tree.add("/lrz/sng/rack0/node1/power");
    tree.add("/lrz/sng/rack1/node0/power");
    tree.add("/lrz/cm2/rack0/node0/power");

    const auto systems = tree.children("/lrz");
    ASSERT_EQ(systems.size(), 2u);
    EXPECT_EQ(systems[0], "cm2");
    EXPECT_EQ(systems[1], "sng");
    EXPECT_EQ(tree.children("/lrz/sng").size(), 2u);
    EXPECT_EQ(tree.children("/").size(), 1u);
    EXPECT_TRUE(tree.children("/nope").empty());
}

TEST(SensorTree, SensorsBelowSubtree) {
    SensorTree tree;
    tree.add("/a/b/s1");
    tree.add("/a/b/s2");
    tree.add("/a/c/s3");
    EXPECT_EQ(tree.sensors_below("/a/b").size(), 2u);
    EXPECT_EQ(tree.sensors_below("/a").size(), 3u);
    EXPECT_EQ(tree.sensors_below("").size(), 3u);
    EXPECT_EQ(tree.sensors_below("/a/b/s1").size(), 1u);
    // Prefix must respect level boundaries: "/a/bb/s" is not below "/a/b".
    tree.add("/a/bb/s4");
    EXPECT_EQ(tree.sensors_below("/a/b").size(), 2u);
}

TEST(SensorTree, IsSensorDistinguishesLeaves) {
    SensorTree tree;
    tree.add("/a/b/s1");
    EXPECT_TRUE(tree.is_sensor("/a/b/s1"));
    EXPECT_FALSE(tree.is_sensor("/a/b"));
    EXPECT_EQ(tree.sensor_count(), 1u);
}

}  // namespace
}  // namespace dcdb
