// Tests for the streaming analytics layer (the paper's Section 9 future
// work): operators in isolation and the pipeline attached to a live
// Collect Agent.
#include <gtest/gtest.h>

#include <filesystem>

#include "analytics/operators.hpp"
#include "analytics/pipeline.hpp"
#include "collectagent/collect_agent.hpp"
#include <cmath>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "core/payload.hpp"
#include "mqtt/client.hpp"
#include "store/cluster.hpp"

namespace dcdb::analytics {
namespace {

// ------------------------------------------------------------- operators

TEST(Operators, SlidingAverageOverWindow) {
    SlidingAverage avg(3 * kNsPerSec);
    const std::string topic = "/t";
    EXPECT_EQ(avg.process(topic, {1 * kNsPerSec, 10})->reading.value, 10);
    EXPECT_EQ(avg.process(topic, {2 * kNsPerSec, 20})->reading.value, 15);
    EXPECT_EQ(avg.process(topic, {3 * kNsPerSec, 30})->reading.value, 20);
    // Window slides: the first reading (t=1s) falls out at t=4s.
    EXPECT_EQ(avg.process(topic, {4 * kNsPerSec, 40})->reading.value, 30);
}

TEST(Operators, SlidingAverageIsPerTopic) {
    SlidingAverage avg(10 * kNsPerSec);
    avg.process("/a", {kNsPerSec, 100});
    const auto b = avg.process("/b", {kNsPerSec, 0});
    EXPECT_EQ(b->reading.value, 0) << "topics must not share state";
}

TEST(Operators, RateOfChangeTurnsCountersIntoRates) {
    RateOfChange rate;
    EXPECT_FALSE(rate.process("/c", {1 * kNsPerSec, 1000}).has_value());
    const auto r = rate.process("/c", {3 * kNsPerSec, 3000});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->reading.value, 1000);  // 2000 over 2 seconds
}

TEST(Operators, RateIgnoresNonMonotonicTimestamps) {
    RateOfChange rate;
    rate.process("/c", {2 * kNsPerSec, 10});
    EXPECT_FALSE(rate.process("/c", {2 * kNsPerSec, 20}).has_value());
    EXPECT_FALSE(rate.process("/c", {1 * kNsPerSec, 5}).has_value());
}

TEST(Operators, SmootherConvergesToConstant) {
    Smoother ewma(0.5);
    Value last = 0;
    for (int i = 0; i < 20; ++i)
        last = ewma.process("/t", {static_cast<TimestampNs>(i + 1), 100})
                   ->reading.value;
    EXPECT_EQ(last, 100);
    EXPECT_THROW(Smoother bad(0.0), Error);
    EXPECT_THROW(Smoother bad2(1.5), Error);
}

TEST(Operators, ThresholdFiresOnlyOutsideBand) {
    ThresholdAlert alert(10, 20);
    EXPECT_FALSE(alert.process("/t", {1, 15}).has_value());
    EXPECT_FALSE(alert.process("/t", {2, 10}).has_value());
    const auto high = alert.process("/t", {3, 21});
    ASSERT_TRUE(high.has_value());
    EXPECT_TRUE(high->is_event);
    EXPECT_NE(high->detail.find("outside"), std::string::npos);
    EXPECT_TRUE(alert.process("/t", {4, 9})->is_event);
    EXPECT_THROW(ThresholdAlert bad(5, 1), Error);
}

TEST(Operators, ZScoreFlagsSpikeNotSteadyState) {
    ZScoreAnomaly detector(32, 4.0);
    Rng rng(1);
    // Steady noise around 1000: no anomalies after warm-up.
    int false_positives = 0;
    for (int i = 0; i < 200; ++i) {
        const Value v =
            1000 + static_cast<Value>(std::llround(rng.gaussian(0, 10)));
        if (detector.process("/p", {static_cast<TimestampNs>(i + 1), v}))
            ++false_positives;
    }
    EXPECT_LE(false_positives, 2);
    // A 50-sigma spike must fire.
    const auto spike = detector.process("/p", {1000, 2000});
    ASSERT_TRUE(spike.has_value());
    EXPECT_TRUE(spike->is_event);
}

// -------------------------------------------------------------- pipeline

class PipelineTest : public ::testing::Test {
  protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("dcdb_analytics_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        std::filesystem::create_directories(dir_);
        cluster_ = std::make_unique<store::StoreCluster>(store::ClusterConfig{
            dir_.string(), 1, 1, "hierarchy", 8u << 20, false});
        meta_ = std::make_unique<store::MetaStore>();
        agent_ = std::make_unique<collectagent::CollectAgent>(
            parse_config("global { listenTcp false }"), cluster_.get(),
            meta_.get());
    }
    void TearDown() override {
        agent_.reset();
        std::filesystem::remove_all(dir_);
    }

    void publish(const std::string& topic, std::vector<Reading> readings) {
        mqtt::MqttClient client(agent_->connect_inproc(), "t");
        client.connect();
        client.publish(topic,
                       encode_readings(std::span<const Reading>(readings)),
                       1);
        client.disconnect();
    }

    static std::atomic<int> counter_;
    std::filesystem::path dir_;
    std::unique_ptr<store::StoreCluster> cluster_;
    std::unique_ptr<store::MetaStore> meta_;
    std::unique_ptr<collectagent::CollectAgent> agent_;
};

std::atomic<int> PipelineTest::counter_{0};

TEST_F(PipelineTest, DerivedSeriesWrittenBackUnderOperatorSuffix) {
    AnalyticsPipeline pipeline(*agent_);
    pipeline.add_stage("/sys/+/power",
                       std::make_shared<SlidingAverage>(60 * kNsPerSec));

    publish("/sys/n0/power", {{1 * kNsPerSec, 100},
                              {2 * kNsPerSec, 200},
                              {3 * kNsPerSec, 300}});

    EXPECT_EQ(pipeline.readings_processed(), 3u);
    EXPECT_EQ(pipeline.derived_written(), 3u);
    const auto derived =
        agent_->query_stored("/sys/n0/power/avg", 0, kTimestampMax);
    ASSERT_EQ(derived.size(), 3u);
    EXPECT_EQ(derived[2].value, 200);  // mean of 100,200,300
    // Derived series appear in the hierarchy like any sensor.
    EXPECT_TRUE(agent_->hierarchy().is_sensor("/sys/n0/power/avg"));
}

TEST_F(PipelineTest, FilterSelectsSubtree) {
    AnalyticsPipeline pipeline(*agent_);
    pipeline.add_stage("/sys/#", std::make_shared<Smoother>(1.0));
    publish("/sys/n0/temp", {{kNsPerSec, 42}});
    publish("/fac/pdu/power", {{kNsPerSec, 9000}});
    EXPECT_EQ(pipeline.derived_written(), 1u);
    EXPECT_TRUE(
        agent_->query_stored("/fac/pdu/power/ewma", 0, kTimestampMax)
            .empty());
}

TEST_F(PipelineTest, EventsReachHandlerAndAreNotStored) {
    AnalyticsPipeline pipeline(*agent_);
    pipeline.add_stage("/sys/#",
                       std::make_shared<ThresholdAlert>(0, 500));
    std::vector<Event> events;
    pipeline.set_event_handler(
        [&events](const Event& e) { events.push_back(e); });

    publish("/sys/n0/power", {{1 * kNsPerSec, 400},
                              {2 * kNsPerSec, 900},
                              {3 * kNsPerSec, 450}});
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].topic, "/sys/n0/power");
    EXPECT_EQ(events[0].reading.value, 900);
    EXPECT_EQ(pipeline.events_emitted(), 1u);
    EXPECT_EQ(pipeline.derived_written(), 0u);
}

TEST_F(PipelineTest, MultipleStagesComposeOnOneStream) {
    AnalyticsPipeline pipeline(*agent_);
    pipeline.add_stage("/sys/#", std::make_shared<RateOfChange>());
    pipeline.add_stage("/sys/#",
                       std::make_shared<SlidingAverage>(60 * kNsPerSec));
    publish("/sys/n0/energy", {{1 * kNsPerSec, 0},
                               {2 * kNsPerSec, 250},
                               {3 * kNsPerSec, 500}});
    const auto rate =
        agent_->query_stored("/sys/n0/energy/rate", 0, kTimestampMax);
    ASSERT_EQ(rate.size(), 2u);  // first reading yields no rate
    EXPECT_EQ(rate[0].value, 250);
    EXPECT_EQ(
        agent_->query_stored("/sys/n0/energy/avg", 0, kTimestampMax).size(),
        3u);
}

TEST_F(PipelineTest, DerivedOutputDoesNotReenterPipeline) {
    AnalyticsPipeline pipeline(*agent_);
    // '#' matches everything, including the derived topics; without the
    // re-entry guard this would recurse forever.
    pipeline.add_stage("#", std::make_shared<Smoother>(1.0));
    publish("/sys/n0/power", {{kNsPerSec, 100}});
    EXPECT_EQ(pipeline.readings_processed(), 1u);
    EXPECT_EQ(pipeline.derived_written(), 1u);
    EXPECT_TRUE(
        agent_->query_stored("/sys/n0/power/ewma/ewma", 0, kTimestampMax)
            .empty());
}

TEST_F(PipelineTest, InvalidFilterRejected) {
    AnalyticsPipeline pipeline(*agent_);
    EXPECT_THROW(
        pipeline.add_stage("/bad/#/filter", std::make_shared<RateOfChange>()),
        Error);
}

}  // namespace
}  // namespace dcdb::analytics
