// Tests for the Pusher framework: sensors, groups, the sampler's aligned
// scheduling, the MQTT push path, the REST API and plugin lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "common/clock.hpp"
#include "core/payload.hpp"
#include "mqtt/broker.hpp"
#include "net/http.hpp"
#include "pusher/pusher.hpp"
#include "pusher/sampler.hpp"
#include "pusher/sensor_base.hpp"
#include "pusher/sensor_group.hpp"

namespace dcdb::pusher {
namespace {

TEST(SensorBase, TopicIsNormalized) {
    SensorBase s("power", "node0//power/");
    EXPECT_EQ(s.topic(), "/node0/power");
}

TEST(SensorBase, PendingAccumulatesAndDrains) {
    SensorBase s("x", "/t/x");
    s.store_reading({1, 10}, nullptr, kNsPerSec);
    s.store_reading({2, 20}, nullptr, kNsPerSec);
    EXPECT_EQ(s.pending_count(), 2u);
    const auto drained = s.drain_pending();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[1].value, 20);
    EXPECT_EQ(s.pending_count(), 0u);
    ASSERT_TRUE(s.latest().has_value());
    EXPECT_EQ(s.latest()->value, 20);
}

TEST(SensorBase, DeltaModePublishesDifferences) {
    SensorBase s("ctr", "/t/ctr");
    s.set_delta(true);
    s.store_reading({1, 1000}, nullptr, kNsPerSec);  // baseline, swallowed
    s.store_reading({2, 1500}, nullptr, kNsPerSec);
    s.store_reading({3, 1800}, nullptr, kNsPerSec);
    const auto drained = s.drain_pending();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].value, 500);
    EXPECT_EQ(drained[1].value, 300);
}

TEST(SensorBase, ReadingsMirroredIntoCache) {
    CacheSet cache(60 * kNsPerSec);
    SensorBase s("x", "/t/x");
    s.store_reading({5, 55}, &cache, kNsPerSec);
    ASSERT_TRUE(cache.latest("/t/x").has_value());
    EXPECT_EQ(cache.latest("/t/x")->value, 55);
}

namespace {

class CountingGroup final : public SensorGroup {
  public:
    CountingGroup(std::string name, TimestampNs interval)
        : SensorGroup(std::move(name), interval) {}

    std::vector<TimestampNs> timestamps;

  protected:
    bool do_read(TimestampNs ts, std::vector<Value>& out) override {
        timestamps.push_back(ts);
        for (auto& v : out) v = static_cast<Value>(ts);
        return true;
    }
};

class FailingGroup final : public SensorGroup {
  public:
    using SensorGroup::SensorGroup;

  protected:
    bool do_read(TimestampNs, std::vector<Value>&) override {
        throw std::runtime_error("backend unavailable");
    }
};

}  // namespace

TEST(SensorGroup, ReadAllStampsAllSensorsIdentically) {
    CountingGroup group("g", kNsPerSec);
    group.add_sensor(std::make_unique<SensorBase>("a", "/t/a"));
    group.add_sensor(std::make_unique<SensorBase>("b", "/t/b"));
    group.read_all(42, nullptr);
    EXPECT_EQ(group.sensors()[0]->latest()->ts, 42u);
    EXPECT_EQ(group.sensors()[1]->latest()->ts, 42u);
    EXPECT_EQ(group.reads_performed(), 1u);
}

TEST(SensorGroup, DisabledGroupSkipsReads) {
    CountingGroup group("g", kNsPerSec);
    group.add_sensor(std::make_unique<SensorBase>("a", "/t/a"));
    group.set_enabled(false);
    group.read_all(42, nullptr);
    EXPECT_EQ(group.reads_performed(), 0u);
    EXPECT_FALSE(group.sensors()[0]->latest().has_value());
}

TEST(SensorGroup, ExceptionInReadIsContained) {
    FailingGroup group("g", kNsPerSec);
    group.add_sensor(std::make_unique<SensorBase>("a", "/t/a"));
    EXPECT_NO_THROW(group.read_all(42, nullptr));
    EXPECT_EQ(group.reads_performed(), 0u);
}

TEST(Sampler, SamplesAtAlignedTimestamps) {
    CacheSet cache(60 * kNsPerSec);
    Sampler sampler(2, &cache);
    CountingGroup group("g", 100 * kNsPerMs);
    group.add_sensor(std::make_unique<SensorBase>("a", "/t/a"));
    sampler.add_group(&group);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(550));
    sampler.stop();

    ASSERT_GE(group.timestamps.size(), 3u);
    for (const auto ts : group.timestamps)
        EXPECT_EQ(ts % (100 * kNsPerMs), 0u)
            << "deadlines must be aligned to the interval";
    // Consecutive deadlines are exactly one interval apart.
    for (std::size_t i = 1; i < group.timestamps.size(); ++i)
        EXPECT_EQ(group.timestamps[i] - group.timestamps[i - 1],
                  100 * kNsPerMs);
}

TEST(Sampler, MultipleGroupsWithDifferentIntervals) {
    Sampler sampler(2, nullptr);
    CountingGroup fast("fast", 50 * kNsPerMs);
    fast.add_sensor(std::make_unique<SensorBase>("a", "/t/fa"));
    CountingGroup slow("slow", 200 * kNsPerMs);
    slow.add_sensor(std::make_unique<SensorBase>("a", "/t/sa"));
    sampler.add_group(&fast);
    sampler.add_group(&slow);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(650));
    sampler.stop();
    EXPECT_GT(fast.timestamps.size(), 2 * slow.timestamps.size());
    EXPECT_GE(slow.timestamps.size(), 2u);
}

TEST(Sampler, RemovedGroupStopsFiring) {
    Sampler sampler(1, nullptr);
    CountingGroup group("g", 50 * kNsPerMs);
    group.add_sensor(std::make_unique<SensorBase>("a", "/t/a"));
    sampler.add_group(&group);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    sampler.remove_groups({&group});
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto count = group.timestamps.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_EQ(group.timestamps.size(), count);
    sampler.stop();
}

// ---------------------------------------------------------------- Pusher

ConfigNode tester_config(int sensors, const std::string& interval,
                         bool rest = false) {
    return parse_config(
        "global {\n"
        "    topicPrefix /test/node0\n"
        "    threads 2\n"
        "    pushInterval 100ms\n"
        "    restApi " + std::string(rest ? "true" : "false") + "\n"
        "}\n"
        "plugins {\n"
        "    tester {\n"
        "        group g0 { sensors " + std::to_string(sensors) +
        " ; interval " + interval + " }\n"
        "    }\n"
        "}\n");
}

TEST(Pusher, EndToEndThroughInprocBroker) {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<mqtt::Publish> messages;
    mqtt::MqttBroker broker(
        mqtt::BrokerMode::kReduced,
        [&](const mqtt::Publish& p) {
            std::scoped_lock lock(mutex);
            messages.push_back(p);
            cv.notify_all();
        },
        0, /*listen_tcp=*/false);

    Pusher pusher(tester_config(5, "100ms"), broker.connect_inproc());
    pusher.start();
    {
        std::unique_lock lock(mutex);
        ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                                [&] { return messages.size() >= 5; }));
    }
    pusher.stop();

    std::scoped_lock lock(mutex);
    bool found = false;
    for (const auto& m : messages) {
        EXPECT_TRUE(m.topic.starts_with("/test/node0/tester/g0/"));
        // The pusher coalesces a multi-sensor group into one v1 batch
        // payload; a round that drained a single sensor stays v0.
        std::vector<Reading> readings;
        if (is_batch_payload(m.payload)) {
            BatchPayloadView view;
            decode_batch(m.payload, view);
            EXPECT_EQ(view.torn_bytes, 0u);
            for (const auto& section : view.sections) {
                EXPECT_TRUE(std::string(section.topic)
                                .starts_with("/test/node0/tester/g0/"));
                for (std::size_t i = 0; i < section.readings.size(); ++i)
                    readings.push_back(section.readings[i]);
            }
        } else {
            readings = decode_readings(m.payload);
        }
        EXPECT_FALSE(readings.empty());
        for (const auto& r : readings)
            EXPECT_EQ(r.ts % (100 * kNsPerMs), 0u);
        found = true;
    }
    EXPECT_TRUE(found);
    const auto stats = pusher.stats();
    EXPECT_EQ(stats.sensors, 5u);
    EXPECT_GT(stats.readings_pushed, 0u);
}

TEST(Pusher, CoalescedGroupArrivesAsOneMultiSensorMessage) {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<mqtt::Publish> messages;
    mqtt::MqttBroker broker(
        mqtt::BrokerMode::kReduced,
        [&](const mqtt::Publish& p) {
            std::scoped_lock lock(mutex);
            messages.push_back(p);
            cv.notify_all();
        },
        0, /*listen_tcp=*/false);

    Pusher pusher(tester_config(5, "100ms"), broker.connect_inproc());
    pusher.start();
    {
        std::unique_lock lock(mutex);
        ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                                [&] { return messages.size() >= 3; }));
    }
    pusher.stop();

    // A full sampling round drains all 5 sensors of the group into ONE
    // v1 batch payload with one section per sensor.
    std::scoped_lock lock(mutex);
    bool full_round = false;
    for (const auto& m : messages) {
        if (!is_batch_payload(m.payload)) continue;
        BatchPayloadView view;
        decode_batch(m.payload, view);
        if (view.sections.size() == 5) full_round = true;
        // Section topics must be distinct sensors of the group.
        std::set<std::string> topics;
        for (const auto& section : view.sections)
            topics.insert(std::string(section.topic));
        EXPECT_EQ(topics.size(), view.sections.size());
    }
    EXPECT_TRUE(full_round);
    const auto stats = pusher.stats();
    EXPECT_LT(stats.messages_sent, stats.readings_pushed)
        << "coalescing must send fewer messages than readings";
}

TEST(Pusher, CoalescingCanBeDisabledByConfig) {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<mqtt::Publish> messages;
    mqtt::MqttBroker broker(
        mqtt::BrokerMode::kReduced,
        [&](const mqtt::Publish& p) {
            std::scoped_lock lock(mutex);
            messages.push_back(p);
            cv.notify_all();
        },
        0, /*listen_tcp=*/false);

    auto config = parse_config(
        "global {\n"
        "    topicPrefix /test/node0\n"
        "    pushInterval 100ms\n"
        "    coalescePush false\n"
        "    restApi false\n"
        "}\n"
        "plugins { tester { group g0 { sensors 4 ; interval 100ms } } }\n");
    Pusher pusher(std::move(config), broker.connect_inproc());
    pusher.start();
    {
        std::unique_lock lock(mutex);
        ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                                [&] { return messages.size() >= 8; }));
    }
    pusher.stop();

    // Legacy discipline: every message is a v0 single-sensor payload.
    std::scoped_lock lock(mutex);
    for (const auto& m : messages) {
        EXPECT_FALSE(is_batch_payload(m.payload));
        EXPECT_FALSE(decode_readings(m.payload).empty());
    }
}

TEST(Pusher, CacheOnlyOperationWithoutBroker) {
    Pusher pusher(tester_config(3, "50ms"));
    pusher.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    pusher.stop();
    EXPECT_EQ(pusher.cache().sensor_count(), 3u);
    EXPECT_TRUE(pusher.cache()
                    .latest("/test/node0/tester/g0/s0")
                    .has_value());
}

TEST(Pusher, RestApiServesSensorsAndPlugins) {
    Pusher pusher(tester_config(2, "50ms", /*rest=*/true));
    pusher.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const auto port = pusher.rest_port();
    ASSERT_GT(port, 0);

    const auto sensors = http_get("127.0.0.1", port, "/sensors");
    EXPECT_EQ(sensors.status, 200);
    EXPECT_NE(sensors.body.find("/test/node0/tester/g0/s0"),
              std::string::npos);

    const auto one =
        http_get("127.0.0.1", port, "/sensors/test/node0/tester/g0/s0");
    EXPECT_EQ(one.status, 200);

    const auto avg = http_get("127.0.0.1", port,
                              "/sensors/test/node0/tester/g0/s0?avg=60");
    EXPECT_EQ(avg.status, 200);

    const auto plugins = http_get("127.0.0.1", port, "/plugins");
    EXPECT_NE(plugins.body.find("tester running 2 sensors"),
              std::string::npos);

    const auto config = http_get("127.0.0.1", port, "/config");
    EXPECT_NE(config.body.find("topicPrefix"), std::string::npos);

    EXPECT_EQ(http_get("127.0.0.1", port, "/nope").status, 404);
    pusher.stop();
}

TEST(Pusher, RestHelpAndNotFoundEnumerateEveryServedRoute) {
    Pusher pusher(tester_config(1, "50ms", /*rest=*/true));
    pusher.start();
    const auto port = pusher.rest_port();
    ASSERT_GT(port, 0);

    const auto help = http_get("127.0.0.1", port, "/");
    ASSERT_EQ(help.status, 200);
    const auto not_found = http_get("127.0.0.1", port, "/nope");
    ASSERT_EQ(not_found.status, 404);

    // Every advertised route is actually served, and both the help text
    // and the 404 fallback advertise all of them — this is the parity
    // the hard-coded help strings used to lose (/stats was missing).
    for (const std::string route :
         {"/sensors", "/plugins", "/config", "/stats", "/healthz",
          "/readyz", "/traces", "/traces.json", "/metrics",
          "/metrics.json"}) {
        EXPECT_NE(help.body.find(route), std::string::npos)
            << route << " missing from /";
        EXPECT_NE(not_found.body.find(route), std::string::npos)
            << route << " missing from the 404 fallback";
        EXPECT_NE(http_get("127.0.0.1", port, route).status, 404)
            << route << " advertised but not served";
    }
    pusher.stop();
}

TEST(Pusher, HealthzAlwaysOkReadyzTracksBrokerSession) {
    // Cache-only (no broker configured): as ready as it gets.
    Pusher cache_only(tester_config(1, "50ms", /*rest=*/true));
    cache_only.start();
    const auto port = cache_only.rest_port();
    const auto health = http_get("127.0.0.1", port, "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("ok"), std::string::npos);
    const auto ready = http_get("127.0.0.1", port, "/readyz");
    EXPECT_EQ(ready.status, 200);
    EXPECT_NE(ready.body.find("\"ready\":true"), std::string::npos);
    cache_only.stop();

    // A configured but unreachable broker: alive (healthz 200) but not
    // ready (readyz 503) until a session comes up.
    Pusher unreachable(parse_config(
        "global {\n"
        "    topicPrefix /test/node1\n"
        "    mqttBroker 127.0.0.1:1\n"
        "    restApi true\n"
        "}\n"
        "plugins { tester { group g0 { sensors 1 ; interval 1s } } }\n"));
    const auto port2 = unreachable.rest_port();
    ASSERT_GT(port2, 0);
    EXPECT_EQ(http_get("127.0.0.1", port2, "/healthz").status, 200);
    const auto not_ready = http_get("127.0.0.1", port2, "/readyz");
    EXPECT_EQ(not_ready.status, 503);
    EXPECT_NE(not_ready.body.find("mqtt session down"), std::string::npos);
}

TEST(Pusher, RestStartStopControlsSampling) {
    Pusher pusher(tester_config(1, "50ms", /*rest=*/true));
    pusher.start();
    const auto port = pusher.rest_port();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    EXPECT_EQ(http_request("127.0.0.1", port, "PUT",
                           "/plugins/tester/stop")
                  .status,
              200);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto samples_when_stopped = pusher.stats().samples_taken;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    // The sampler still fires but the disabled group performs no reads.
    EXPECT_EQ(pusher.plugins()[0]->groups()[0]->reads_performed(),
              pusher.plugins()[0]->groups()[0]->reads_performed());
    EXPECT_FALSE(pusher.plugins()[0]->running());

    EXPECT_EQ(http_request("127.0.0.1", port, "PUT",
                           "/plugins/tester/start")
                  .status,
              200);
    EXPECT_TRUE(pusher.plugins()[0]->running());
    (void)samples_when_stopped;

    EXPECT_EQ(http_request("127.0.0.1", port, "PUT",
                           "/plugins/nosuch/start")
                  .status,
              404);
    pusher.stop();
}

TEST(Pusher, ReloadRebuildsPluginFromConfig) {
    Pusher pusher(tester_config(2, "50ms"));
    pusher.start();
    EXPECT_EQ(pusher.stats().sensors, 2u);
    // In-memory config: reload re-applies the same subtree.
    pusher.reload_plugin("tester");
    EXPECT_EQ(pusher.stats().sensors, 2u);
    EXPECT_THROW(pusher.reload_plugin("nosuch"), ConfigError);
    pusher.stop();
}

TEST(Pusher, ReloadFromFilePicksUpChanges) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "dcdb_pusher_reload.conf").string();
    auto write_config = [&](int sensors) {
        std::ofstream out(path);
        out << "global { topicPrefix /test/n0 }\n"
            << "plugins { tester { group g0 { sensors " << sensors
            << " ; interval 1s } } }\n";
    };
    write_config(2);
    auto pusher = Pusher::from_file(path);
    EXPECT_EQ(pusher->stats().sensors, 2u);
    write_config(7);
    pusher->reload_plugin("tester");
    EXPECT_EQ(pusher->stats().sensors, 7u);
    fs::remove(path);
}

TEST(Pusher, BadBrokerAddressThrows) {
    auto config = parse_config(
        "global { mqttBroker not-an-address }\n"
        "plugins { tester { group g { sensors 1 } } }\n");
    EXPECT_THROW(Pusher pusher(std::move(config)), ConfigError);
}

TEST(Pusher, UnknownPluginNameThrows) {
    auto config = parse_config("plugins { warpdrive { } }\n");
    EXPECT_THROW(Pusher pusher(std::move(config)), ConfigError);
}

}  // namespace
}  // namespace dcdb::pusher
