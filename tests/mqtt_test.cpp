// Tests for the MQTT substrate: topics, codec, transports, client/broker
// integration over both TCP and in-process transports, and the reduced
// (Collect Agent) broker mode.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "mqtt/broker.hpp"
#include "mqtt/client.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/topic.hpp"
#include "mqtt/transport.hpp"

namespace dcdb::mqtt {
namespace {

// ---------------------------------------------------------------- topics

TEST(Topic, ValidityRules) {
    EXPECT_TRUE(topic_valid("/sys/rack01/node3/power"));
    EXPECT_FALSE(topic_valid(""));
    EXPECT_FALSE(topic_valid("/sys/+/power"));
    EXPECT_FALSE(topic_valid("/sys/#"));
}

TEST(Topic, FilterValidityRules) {
    EXPECT_TRUE(filter_valid("/sys/+/power"));
    EXPECT_TRUE(filter_valid("/sys/#"));
    EXPECT_TRUE(filter_valid("#"));
    EXPECT_FALSE(filter_valid("/sys/#/power"));  // '#' must be last
    EXPECT_FALSE(filter_valid("/sys/a+/power"));  // '+' must fill a level
    EXPECT_FALSE(filter_valid(""));
}

TEST(Topic, MatchingSpecExamples) {
    EXPECT_TRUE(topic_matches("sport/tennis/player1/#", "sport/tennis/player1"));
    EXPECT_TRUE(topic_matches("sport/tennis/player1/#",
                              "sport/tennis/player1/ranking"));
    EXPECT_FALSE(topic_matches("sport/tennis/+", "sport/tennis/player1/ranking"));
    EXPECT_TRUE(topic_matches("sport/+", "sport/"));
    EXPECT_TRUE(topic_matches("+/+", "/finance"));
    EXPECT_TRUE(topic_matches("/+", "/finance"));
    EXPECT_FALSE(topic_matches("+", "/finance"));
}

TEST(Topic, HierarchyMatching) {
    const std::string topic = "/lrz/coolmuc3/rack2/node17/cpu03/instructions";
    EXPECT_TRUE(topic_matches("/lrz/coolmuc3/#", topic));
    EXPECT_TRUE(topic_matches("/lrz/+/rack2/#", topic));
    EXPECT_FALSE(topic_matches("/lrz/coolmuc2/#", topic));
}

TEST(Topic, NormalizeSensorTopic) {
    EXPECT_EQ(normalize_sensor_topic("sys/node/power"), "/sys/node/power");
    EXPECT_EQ(normalize_sensor_topic("//sys//node/power/"),
              "/sys/node/power");
    EXPECT_EQ(normalize_sensor_topic("/"), "/");
}

// ----------------------------------------------------------------- codec

template <typename T>
T encode_decode(const Packet& p) {
    const auto bytes = encode(p);
    // Split fixed-header byte + varint from body the way a reader would.
    ByteReader r(bytes);
    const std::uint8_t first = r.u8();
    const std::uint32_t remaining = r.varint();
    const auto body = r.bytes(remaining);
    EXPECT_EQ(r.remaining(), 0u) << "encoder wrote trailing bytes";
    const Packet out = decode(first, body);
    const T* typed = std::get_if<T>(&out);
    EXPECT_NE(typed, nullptr);
    return *typed;
}

TEST(Codec, ConnectRoundTrip) {
    Connect c;
    c.client_id = "pusher-node0042";
    c.keepalive_s = 30;
    c.clean_session = true;
    const auto out = encode_decode<Connect>(c);
    EXPECT_EQ(out.client_id, c.client_id);
    EXPECT_EQ(out.keepalive_s, 30);
    EXPECT_TRUE(out.clean_session);
}

TEST(Codec, ConnackReturnCode) {
    const auto out = encode_decode<Connack>(Connack{5, true});
    EXPECT_EQ(out.return_code, 5);
    EXPECT_TRUE(out.session_present);
}

TEST(Codec, PublishQos0RoundTrip) {
    Publish p;
    p.topic = "/sys/node0/power";
    p.payload = {1, 2, 3, 4};
    const auto out = encode_decode<Publish>(p);
    EXPECT_EQ(out.topic, p.topic);
    EXPECT_EQ(out.payload, p.payload);
    EXPECT_EQ(out.qos, 0);
}

TEST(Codec, PublishQos1CarriesPacketId) {
    Publish p;
    p.topic = "/t";
    p.qos = 1;
    p.packet_id = 777;
    p.payload = {9};
    const auto out = encode_decode<Publish>(p);
    EXPECT_EQ(out.qos, 1);
    EXPECT_EQ(out.packet_id, 777);
}

TEST(Codec, PublishEmptyPayloadAllowed) {
    Publish p;
    p.topic = "/t";
    const auto out = encode_decode<Publish>(p);
    EXPECT_TRUE(out.payload.empty());
}

TEST(Codec, PublishLargePayloadUsesMultiByteLength) {
    Publish p;
    p.topic = "/t";
    p.payload.assign(100000, 0xAA);
    const auto bytes = encode(p);
    const auto out = encode_decode<Publish>(p);
    EXPECT_EQ(out.payload.size(), 100000u);
    EXPECT_GT(bytes.size(), 100000u);
}

TEST(Codec, SubscribeRoundTrip) {
    Subscribe s;
    s.packet_id = 42;
    s.filters = {{"/sys/#", 1}, {"/fac/+/temp", 0}};
    const auto out = encode_decode<Subscribe>(s);
    ASSERT_EQ(out.filters.size(), 2u);
    EXPECT_EQ(out.filters[0].first, "/sys/#");
    EXPECT_EQ(out.filters[0].second, 1);
}

TEST(Codec, SubackRoundTrip) {
    Suback s;
    s.packet_id = 42;
    s.return_codes = {0, 0x80};
    const auto out = encode_decode<Suback>(s);
    EXPECT_EQ(out.return_codes.size(), 2u);
    EXPECT_EQ(out.return_codes[1], 0x80);
}

TEST(Codec, ControlPacketsRoundTrip) {
    encode_decode<Pingreq>(Pingreq{});
    encode_decode<Pingresp>(Pingresp{});
    encode_decode<Disconnect>(Disconnect{});
    EXPECT_EQ(encode(Pingreq{}).size(), 2u);  // fixed header only
}

TEST(Codec, RejectsMalformedPackets) {
    // Publish with wildcard topic.
    ByteWriter body;
    body.mqtt_str("/sys/+/power");
    EXPECT_THROW(decode(0x30, body.data()), ProtocolError);
    // Subscribe with wrong reserved flags.
    ByteWriter sub;
    sub.u16be(1);
    sub.mqtt_str("/t");
    sub.u8(0);
    EXPECT_THROW(decode(0x80, sub.data()), ProtocolError);
    // Truncated connack.
    EXPECT_THROW(decode(0x20, std::span<const std::uint8_t>{}),
                 ProtocolError);
}

// ------------------------------------------------------------- transport

TEST(Transport, InProcPairDeliversBytesBothWays) {
    auto [a, b] = make_inproc_pair();
    const std::uint8_t msg[3] = {1, 2, 3};
    a->send(msg);
    std::uint8_t buf[3];
    EXPECT_EQ(b->recv(buf), 3u);
    EXPECT_EQ(buf[2], 3);
    b->send(buf);
    std::uint8_t back[3];
    EXPECT_EQ(a->recv(back), 3u);
}

TEST(Transport, CloseUnblocksReceiver) {
    auto [a, b] = make_inproc_pair();
    std::thread closer([&a] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        a->close();
    });
    std::uint8_t buf[1];
    EXPECT_EQ(b->recv(buf), 0u);
    closer.join();
}

TEST(Transport, PacketStreamFramesAcrossChunkBoundaries) {
    auto [a, b] = make_inproc_pair();
    PacketStream writer(std::move(a));
    PacketStream reader(std::move(b));

    Publish p;
    p.topic = "/x";
    p.payload.assign(5000, 0x5A);
    writer.write_packet(p);
    writer.write_packet(Pingreq{});

    const auto first = reader.read_packet();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(std::get<Publish>(*first).payload.size(), 5000u);
    const auto second = reader.read_packet();
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(std::holds_alternative<Pingreq>(*second));
}

// --------------------------------------------------------- client/broker

class Collected {
  public:
    void add(const Publish& p) {
        std::scoped_lock lock(mutex_);
        messages_.push_back(p);
        cv_.notify_all();
    }
    bool wait_count(std::size_t n, int timeout_ms = 2000) {
        std::unique_lock lock(mutex_);
        return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return messages_.size() >= n; });
    }
    std::vector<Publish> snapshot() {
        std::scoped_lock lock(mutex_);
        return messages_;
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Publish> messages_;
};

TEST(Broker, TcpPublishReachesSink) {
    Collected sink;
    MqttBroker broker(BrokerMode::kReduced,
                      [&](const Publish& p) { sink.add(p); });
    auto client =
        MqttClient::connect_tcp("127.0.0.1", broker.port(), "test-client");
    client->publish("/sys/node0/power", std::string("\x01\x02"), 0);
    ASSERT_TRUE(sink.wait_count(1));
    const auto msgs = sink.snapshot();
    EXPECT_EQ(msgs[0].topic, "/sys/node0/power");
    EXPECT_EQ(msgs[0].payload.size(), 2u);
    client->disconnect();
}

TEST(Broker, Qos1PublishIsAcknowledged) {
    Collected sink;
    MqttBroker broker(BrokerMode::kReduced,
                      [&](const Publish& p) { sink.add(p); });
    auto client = MqttClient::connect_tcp("127.0.0.1", broker.port(), "c1");
    // publish() at QoS 1 blocks on the PUBACK; returning at all proves the
    // broker acked.
    client->publish("/t", std::string("x"), 1);
    ASSERT_TRUE(sink.wait_count(1));
    client->disconnect();
}

TEST(Broker, InProcConnectionWorksEndToEnd) {
    Collected sink;
    MqttBroker broker(BrokerMode::kReduced,
                      [&](const Publish& p) { sink.add(p); },
                      /*port=*/0, /*listen_tcp=*/false);
    MqttClient client(broker.connect_inproc(), "inproc-client");
    client.connect();
    for (int i = 0; i < 10; ++i)
        client.publish("/t/" + std::to_string(i), std::string("v"), 0);
    ASSERT_TRUE(sink.wait_count(10));
    client.disconnect();
    broker.stop();
    EXPECT_EQ(broker.stats().publishes, 10u);
}

TEST(Broker, ReducedModeRejectsSubscriptions) {
    MqttBroker broker(BrokerMode::kReduced, nullptr);
    auto client = MqttClient::connect_tcp("127.0.0.1", broker.port(), "c");
    // The SUBACK arrives with 0x80; the client surfaces it as a warning,
    // not an exception, but the broker must not route anything.
    client->subscribe({"/sys/#"});
    EXPECT_EQ(broker.stats().rejected_subscribes, 1u);
    client->disconnect();
}

TEST(Broker, FullModeRoutesByFilter) {
    MqttBroker broker(BrokerMode::kFull, nullptr);
    auto subscriber =
        MqttClient::connect_tcp("127.0.0.1", broker.port(), "sub");
    Collected received;
    subscriber->set_message_handler(
        [&](const Publish& p) { received.add(p); });
    subscriber->subscribe({"/sys/+/power"});

    auto publisher =
        MqttClient::connect_tcp("127.0.0.1", broker.port(), "pub");
    publisher->publish("/sys/node0/power", std::string("a"), 0);
    publisher->publish("/sys/node0/temp", std::string("b"), 0);
    publisher->publish("/sys/node1/power", std::string("c"), 0);

    ASSERT_TRUE(received.wait_count(2));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto msgs = received.snapshot();
    ASSERT_EQ(msgs.size(), 2u) << "temp topic must not match filter";
    EXPECT_EQ(msgs[0].topic, "/sys/node0/power");
    EXPECT_EQ(msgs[1].topic, "/sys/node1/power");

    publisher->disconnect();
    subscriber->disconnect();
}

TEST(Broker, ManyConcurrentPublishers) {
    std::atomic<std::uint64_t> count{0};
    MqttBroker broker(BrokerMode::kReduced,
                      [&](const Publish&) { count.fetch_add(1); },
                      /*port=*/0, /*listen_tcp=*/false);
    constexpr int kClients = 16;
    constexpr int kMessages = 50;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&broker, c] {
            MqttClient client(broker.connect_inproc(),
                              "client" + std::to_string(c));
            client.connect();
            for (int i = 0; i < kMessages; ++i)
                client.publish("/h" + std::to_string(c), std::string("p"), 0);
            client.disconnect();
        });
    }
    for (auto& t : threads) t.join();
    // QoS0 is fire-and-forget but the in-proc pipe is lossless and
    // disconnect() flushes, so every message must arrive.
    for (int spin = 0; spin < 100 && count.load() < kClients * kMessages;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(count.load(), kClients * kMessages);
}

TEST(Broker, PingRoundTrip) {
    MqttBroker broker(BrokerMode::kReduced, nullptr);
    auto client = MqttClient::connect_tcp("127.0.0.1", broker.port(), "c");
    client->ping();
    client->disconnect();
}

TEST(Broker, StopWithConnectedClientsDoesNotHang) {
    auto broker = std::make_unique<MqttBroker>(BrokerMode::kReduced, nullptr);
    auto client = MqttClient::connect_tcp("127.0.0.1", broker->port(), "c");
    broker->stop();
    broker.reset();
    SUCCEED();
}

TEST(Client, PublishAfterDisconnectThrows) {
    MqttBroker broker(BrokerMode::kReduced, nullptr);
    auto client = MqttClient::connect_tcp("127.0.0.1", broker.port(), "c");
    client->disconnect();
    EXPECT_THROW(client->publish("/t", std::string("x"), 0), NetError);
}

}  // namespace
}  // namespace dcdb::mqtt
