// Tests for the analysis utilities: statistics, regression (paper Eq. 1),
// KDE (Figure 10's density fits) and the table/chart emitters.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/kde.hpp"
#include "analysis/regression.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "common/error.hpp"
#include "common/random.hpp"

namespace dcdb::analysis {
namespace {

TEST(Stats, MeanMedianQuantiles) {
    const std::vector<double> v = {5, 1, 4, 2, 3};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_DOUBLE_EQ(median(v), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Stats, MedianInterpolatesEvenSizes) {
    EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
    EXPECT_DOUBLE_EQ(variance({2, 2, 2, 2}), 0.0);
    EXPECT_NEAR(stddev({1, 2, 3, 4, 5}), std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyInputsThrow) {
    EXPECT_THROW(mean({}), Error);
    EXPECT_THROW(median({}), Error);
    EXPECT_THROW(histogram({}, 4), Error);
}

TEST(Stats, OverheadMetricMatchesPaperDefinition) {
    // O = (Tp - Tr) / Tr
    EXPECT_NEAR(overhead_percent(100.0, 101.77), 1.77, 1e-9);
    // Monitored faster than reference reports 0, per Figure 5's caption.
    EXPECT_DOUBLE_EQ(overhead_percent(100.0, 99.0), 0.0);
    EXPECT_THROW(overhead_percent(0.0, 1.0), Error);
}

TEST(Stats, HistogramBinning) {
    const auto h = histogram({0.0, 0.1, 0.5, 0.9, 1.0}, 2, 0.0, 1.0);
    ASSERT_EQ(h.counts.size(), 2u);
    EXPECT_EQ(h.counts[0], 2u);  // 0.0, 0.1
    EXPECT_EQ(h.counts[1], 3u);  // 0.5 (lands in upper bin), 0.9, 1.0
    EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
}

TEST(Regression, RecoversExactLine) {
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(3.5 * i + 2.0);
    }
    const auto fit = linear_fit(x, y);
    EXPECT_NEAR(fit.slope, 3.5, 1e-9);
    EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Regression, NoisyLineStillHighR2) {
    Rng rng(3);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        x.push_back(i);
        y.push_back(0.8 * i + 10 + rng.gaussian(0.0, 2.0));
    }
    const auto fit = linear_fit(x, y);
    EXPECT_NEAR(fit.slope, 0.8, 0.05);
    EXPECT_GT(fit.r2, 0.98);
}

TEST(Regression, DegenerateInputsThrow) {
    EXPECT_THROW(linear_fit({1}, {2}), Error);
    EXPECT_THROW(linear_fit({1, 1}, {2, 3}), Error);
    EXPECT_THROW(linear_fit({1, 2}, {2}), Error);
}

TEST(Regression, Equation1Interpolation) {
    // Paper Eq. 1: Lp(s) = Lp(a) + (s-a) * (Lp(b)-Lp(a)) / (b-a).
    // With measurements at 100 and 10000 sensors/s, predict 5000.
    const double predicted = interpolate_load(5000, 100, 0.1, 10000, 2.0);
    EXPECT_NEAR(predicted, 0.1 + 4900.0 / 9900.0 * 1.9, 1e-9);
    EXPECT_THROW(interpolate_load(1, 2, 0.1, 2, 0.2), Error);
}

TEST(Kde, IntegratesToOne) {
    Rng rng(5);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i) samples.push_back(rng.gaussian(10.0, 2.0));
    const auto curve = kde_curve(samples, 0.0, 20.0, 400);
    double integral = 0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        integral += 0.5 * (curve[i].second + curve[i - 1].second) *
                    (curve[i].first - curve[i - 1].first);
    }
    EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(Kde, PeaksNearTheMode) {
    Rng rng(6);
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i) samples.push_back(rng.gaussian(4.0, 0.5));
    const auto curve = kde_curve(samples, 0.0, 8.0, 200);
    double best_x = 0, best_y = -1;
    for (const auto& [x, y] : curve) {
        if (y > best_y) {
            best_y = y;
            best_x = x;
        }
    }
    EXPECT_NEAR(best_x, 4.0, 0.3);
}

TEST(Kde, BimodalMixtureShowsTwoModes) {
    Rng rng(7);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i) samples.push_back(rng.gaussian(2.0, 0.3));
    for (int i = 0; i < 500; ++i) samples.push_back(rng.gaussian(6.0, 0.3));
    const auto curve = kde_curve(samples, 0.0, 8.0, 400);
    // Density at the modes must exceed the valley between them.
    const auto at = [&](double x) {
        double best = 0;
        for (const auto& [cx, cy] : curve)
            if (std::abs(cx - x) < 0.05) best = std::max(best, cy);
        return best;
    };
    EXPECT_GT(at(2.0), 2.0 * at(4.0));
    EXPECT_GT(at(6.0), 2.0 * at(4.0));
}

TEST(Kde, SilvermanBandwidthScalesWithSpread) {
    Rng rng(8);
    std::vector<double> narrow, wide;
    for (int i = 0; i < 300; ++i) {
        narrow.push_back(rng.gaussian(0.0, 1.0));
        wide.push_back(rng.gaussian(0.0, 10.0));
    }
    EXPECT_GT(silverman_bandwidth(wide), 5 * silverman_bandwidth(narrow));
}

TEST(Kde, InvalidInputsThrow) {
    EXPECT_THROW(kde_at({}, 0.0, 1.0), Error);
    EXPECT_THROW(kde_at({1.0}, 0.0, -1.0), Error);
    EXPECT_THROW(kde_curve({1.0}, 0, 1, 1), Error);
}

TEST(Table, AlignedRendering) {
    Table t({"name", "value"});
    t.cell("power").cell(42.5, 1).end_row();
    t.cell("long-sensor-name").cell(std::uint64_t{7}).end_row();
    const std::string s = t.str();
    EXPECT_NE(s.find("| power"), std::string::npos);
    EXPECT_NE(s.find("42.5"), std::string::npos);
    EXPECT_NE(s.find("long-sensor-name"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
    Table t({"a", "b"});
    t.cell("with,comma").cell("with\"quote").end_row();
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, HeatmapRendersAllCells) {
    const auto s = ascii_heatmap({"r1", "r2"}, {"c1", "c2", "c3"},
                                 {{0.1, 0.2, 0.3}, {1.0, 2.0, 3.0}}, "%");
    EXPECT_NE(s.find("3.00"), std::string::npos);
    EXPECT_NE(s.find("r2"), std::string::npos);
    EXPECT_THROW(ascii_heatmap({"r1"}, {}, {}, "%"), Error);
}

TEST(Table, ChartRendersLegend) {
    const std::vector<double> x = {1, 2, 3, 4};
    const auto s = ascii_chart(x, {{"loadA", {0, 1, 2, 3}},
                                   {"loadB", {3, 2, 1, 0}}});
    EXPECT_NE(s.find("legend"), std::string::npos);
    EXPECT_NE(s.find("loadA"), std::string::npos);
}

}  // namespace
}  // namespace dcdb::analysis
