# Empty dependencies file for holistic_cluster.
# This may be replaced when dependencies are built.
