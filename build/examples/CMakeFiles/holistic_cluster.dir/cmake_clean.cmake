file(REMOVE_RECURSE
  "CMakeFiles/holistic_cluster.dir/holistic_cluster.cpp.o"
  "CMakeFiles/holistic_cluster.dir/holistic_cluster.cpp.o.d"
  "holistic_cluster"
  "holistic_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holistic_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
