file(REMOVE_RECURSE
  "CMakeFiles/pue_dashboard.dir/pue_dashboard.cpp.o"
  "CMakeFiles/pue_dashboard.dir/pue_dashboard.cpp.o.d"
  "pue_dashboard"
  "pue_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pue_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
