# Empty compiler generated dependencies file for pue_dashboard.
# This may be replaced when dependencies are built.
