
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_reliability.cpp" "bench/CMakeFiles/bench_reliability.dir/bench_reliability.cpp.o" "gcc" "bench/CMakeFiles/bench_reliability.dir/bench_reliability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/dcdb_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/libdcdb/CMakeFiles/dcdb_libdcdb.dir/DependInfo.cmake"
  "/root/repo/build/src/collectagent/CMakeFiles/dcdb_collectagent.dir/DependInfo.cmake"
  "/root/repo/build/src/plugins/CMakeFiles/dcdb_plugins.dir/DependInfo.cmake"
  "/root/repo/build/src/pusher/CMakeFiles/dcdb_pusher.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dcdb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/dcdb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/dcdb_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcdb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
