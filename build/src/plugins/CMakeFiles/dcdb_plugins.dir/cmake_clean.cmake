file(REMOVE_RECURSE
  "CMakeFiles/dcdb_plugins.dir/bacnet_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/bacnet_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/devices.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/devices.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/gpfs_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/gpfs_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/gpu_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/gpu_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/ipmi_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/ipmi_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/opa_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/opa_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/perfevents_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/perfevents_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/procfs_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/procfs_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/register.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/register.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/rest_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/rest_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/snmp_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/snmp_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/sysfs_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/sysfs_plugin.cpp.o.d"
  "CMakeFiles/dcdb_plugins.dir/tester_plugin.cpp.o"
  "CMakeFiles/dcdb_plugins.dir/tester_plugin.cpp.o.d"
  "libdcdb_plugins.a"
  "libdcdb_plugins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_plugins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
