file(REMOVE_RECURSE
  "libdcdb_plugins.a"
)
