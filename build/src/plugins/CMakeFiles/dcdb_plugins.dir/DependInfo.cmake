
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plugins/bacnet_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/bacnet_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/bacnet_plugin.cpp.o.d"
  "/root/repo/src/plugins/devices.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/devices.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/devices.cpp.o.d"
  "/root/repo/src/plugins/gpfs_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/gpfs_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/gpfs_plugin.cpp.o.d"
  "/root/repo/src/plugins/gpu_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/gpu_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/gpu_plugin.cpp.o.d"
  "/root/repo/src/plugins/ipmi_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/ipmi_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/ipmi_plugin.cpp.o.d"
  "/root/repo/src/plugins/opa_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/opa_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/opa_plugin.cpp.o.d"
  "/root/repo/src/plugins/perfevents_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/perfevents_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/perfevents_plugin.cpp.o.d"
  "/root/repo/src/plugins/procfs_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/procfs_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/procfs_plugin.cpp.o.d"
  "/root/repo/src/plugins/register.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/register.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/register.cpp.o.d"
  "/root/repo/src/plugins/rest_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/rest_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/rest_plugin.cpp.o.d"
  "/root/repo/src/plugins/snmp_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/snmp_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/snmp_plugin.cpp.o.d"
  "/root/repo/src/plugins/sysfs_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/sysfs_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/sysfs_plugin.cpp.o.d"
  "/root/repo/src/plugins/tester_plugin.cpp" "src/plugins/CMakeFiles/dcdb_plugins.dir/tester_plugin.cpp.o" "gcc" "src/plugins/CMakeFiles/dcdb_plugins.dir/tester_plugin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pusher/CMakeFiles/dcdb_pusher.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcdb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/dcdb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/dcdb_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dcdb_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
