# Empty compiler generated dependencies file for dcdb_plugins.
# This may be replaced when dependencies are built.
