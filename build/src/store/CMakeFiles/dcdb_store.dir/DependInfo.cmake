
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/bloom.cpp" "src/store/CMakeFiles/dcdb_store.dir/bloom.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/bloom.cpp.o.d"
  "/root/repo/src/store/cluster.cpp" "src/store/CMakeFiles/dcdb_store.dir/cluster.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/cluster.cpp.o.d"
  "/root/repo/src/store/commitlog.cpp" "src/store/CMakeFiles/dcdb_store.dir/commitlog.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/commitlog.cpp.o.d"
  "/root/repo/src/store/memtable.cpp" "src/store/CMakeFiles/dcdb_store.dir/memtable.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/memtable.cpp.o.d"
  "/root/repo/src/store/metastore.cpp" "src/store/CMakeFiles/dcdb_store.dir/metastore.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/metastore.cpp.o.d"
  "/root/repo/src/store/murmur.cpp" "src/store/CMakeFiles/dcdb_store.dir/murmur.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/murmur.cpp.o.d"
  "/root/repo/src/store/node.cpp" "src/store/CMakeFiles/dcdb_store.dir/node.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/node.cpp.o.d"
  "/root/repo/src/store/partitioner.cpp" "src/store/CMakeFiles/dcdb_store.dir/partitioner.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/partitioner.cpp.o.d"
  "/root/repo/src/store/sstable.cpp" "src/store/CMakeFiles/dcdb_store.dir/sstable.cpp.o" "gcc" "src/store/CMakeFiles/dcdb_store.dir/sstable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
