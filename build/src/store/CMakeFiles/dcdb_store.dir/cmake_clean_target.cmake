file(REMOVE_RECURSE
  "libdcdb_store.a"
)
