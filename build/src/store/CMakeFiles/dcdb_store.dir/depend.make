# Empty dependencies file for dcdb_store.
# This may be replaced when dependencies are built.
