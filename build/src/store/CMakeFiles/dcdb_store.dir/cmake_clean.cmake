file(REMOVE_RECURSE
  "CMakeFiles/dcdb_store.dir/bloom.cpp.o"
  "CMakeFiles/dcdb_store.dir/bloom.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/cluster.cpp.o"
  "CMakeFiles/dcdb_store.dir/cluster.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/commitlog.cpp.o"
  "CMakeFiles/dcdb_store.dir/commitlog.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/memtable.cpp.o"
  "CMakeFiles/dcdb_store.dir/memtable.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/metastore.cpp.o"
  "CMakeFiles/dcdb_store.dir/metastore.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/murmur.cpp.o"
  "CMakeFiles/dcdb_store.dir/murmur.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/node.cpp.o"
  "CMakeFiles/dcdb_store.dir/node.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/partitioner.cpp.o"
  "CMakeFiles/dcdb_store.dir/partitioner.cpp.o.d"
  "CMakeFiles/dcdb_store.dir/sstable.cpp.o"
  "CMakeFiles/dcdb_store.dir/sstable.cpp.o.d"
  "libdcdb_store.a"
  "libdcdb_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
