file(REMOVE_RECURSE
  "libdcdb_collectagent.a"
)
