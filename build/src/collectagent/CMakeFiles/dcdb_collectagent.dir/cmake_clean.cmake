file(REMOVE_RECURSE
  "CMakeFiles/dcdb_collectagent.dir/collect_agent.cpp.o"
  "CMakeFiles/dcdb_collectagent.dir/collect_agent.cpp.o.d"
  "CMakeFiles/dcdb_collectagent.dir/rest_api.cpp.o"
  "CMakeFiles/dcdb_collectagent.dir/rest_api.cpp.o.d"
  "libdcdb_collectagent.a"
  "libdcdb_collectagent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_collectagent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
