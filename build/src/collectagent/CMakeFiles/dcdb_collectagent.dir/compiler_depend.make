# Empty compiler generated dependencies file for dcdb_collectagent.
# This may be replaced when dependencies are built.
