# Empty compiler generated dependencies file for dcdb_net.
# This may be replaced when dependencies are built.
