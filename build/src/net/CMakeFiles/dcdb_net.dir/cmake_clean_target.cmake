file(REMOVE_RECURSE
  "libdcdb_net.a"
)
