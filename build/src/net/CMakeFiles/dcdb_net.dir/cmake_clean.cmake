file(REMOVE_RECURSE
  "CMakeFiles/dcdb_net.dir/http.cpp.o"
  "CMakeFiles/dcdb_net.dir/http.cpp.o.d"
  "CMakeFiles/dcdb_net.dir/socket.cpp.o"
  "CMakeFiles/dcdb_net.dir/socket.cpp.o.d"
  "libdcdb_net.a"
  "libdcdb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
