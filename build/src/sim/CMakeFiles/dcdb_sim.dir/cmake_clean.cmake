file(REMOVE_RECURSE
  "CMakeFiles/dcdb_sim.dir/apps.cpp.o"
  "CMakeFiles/dcdb_sim.dir/apps.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/arch.cpp.o"
  "CMakeFiles/dcdb_sim.dir/arch.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/bacnet_device.cpp.o"
  "CMakeFiles/dcdb_sim.dir/bacnet_device.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/bmc.cpp.o"
  "CMakeFiles/dcdb_sim.dir/bmc.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/cluster_des.cpp.o"
  "CMakeFiles/dcdb_sim.dir/cluster_des.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/cooling.cpp.o"
  "CMakeFiles/dcdb_sim.dir/cooling.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/fabric.cpp.o"
  "CMakeFiles/dcdb_sim.dir/fabric.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/fs_stats.cpp.o"
  "CMakeFiles/dcdb_sim.dir/fs_stats.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/gpu.cpp.o"
  "CMakeFiles/dcdb_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/hpl.cpp.o"
  "CMakeFiles/dcdb_sim.dir/hpl.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/pdu.cpp.o"
  "CMakeFiles/dcdb_sim.dir/pdu.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/perf_counters.cpp.o"
  "CMakeFiles/dcdb_sim.dir/perf_counters.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/power.cpp.o"
  "CMakeFiles/dcdb_sim.dir/power.cpp.o.d"
  "CMakeFiles/dcdb_sim.dir/snmp_agent.cpp.o"
  "CMakeFiles/dcdb_sim.dir/snmp_agent.cpp.o.d"
  "libdcdb_sim.a"
  "libdcdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
