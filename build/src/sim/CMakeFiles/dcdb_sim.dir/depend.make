# Empty dependencies file for dcdb_sim.
# This may be replaced when dependencies are built.
