file(REMOVE_RECURSE
  "libdcdb_sim.a"
)
