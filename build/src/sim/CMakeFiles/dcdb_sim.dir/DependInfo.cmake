
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/apps.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/apps.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/apps.cpp.o.d"
  "/root/repo/src/sim/arch.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/arch.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/arch.cpp.o.d"
  "/root/repo/src/sim/bacnet_device.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/bacnet_device.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/bacnet_device.cpp.o.d"
  "/root/repo/src/sim/bmc.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/bmc.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/bmc.cpp.o.d"
  "/root/repo/src/sim/cluster_des.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/cluster_des.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/cluster_des.cpp.o.d"
  "/root/repo/src/sim/cooling.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/cooling.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/cooling.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/fabric.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/fabric.cpp.o.d"
  "/root/repo/src/sim/fs_stats.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/fs_stats.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/fs_stats.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/gpu.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/gpu.cpp.o.d"
  "/root/repo/src/sim/hpl.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/hpl.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/hpl.cpp.o.d"
  "/root/repo/src/sim/pdu.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/pdu.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/pdu.cpp.o.d"
  "/root/repo/src/sim/perf_counters.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/perf_counters.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/perf_counters.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/power.cpp.o.d"
  "/root/repo/src/sim/snmp_agent.cpp" "src/sim/CMakeFiles/dcdb_sim.dir/snmp_agent.cpp.o" "gcc" "src/sim/CMakeFiles/dcdb_sim.dir/snmp_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcdb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dcdb_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
