file(REMOVE_RECURSE
  "CMakeFiles/dcdb_pusher.dir/mqtt_pusher.cpp.o"
  "CMakeFiles/dcdb_pusher.dir/mqtt_pusher.cpp.o.d"
  "CMakeFiles/dcdb_pusher.dir/plugin.cpp.o"
  "CMakeFiles/dcdb_pusher.dir/plugin.cpp.o.d"
  "CMakeFiles/dcdb_pusher.dir/pusher.cpp.o"
  "CMakeFiles/dcdb_pusher.dir/pusher.cpp.o.d"
  "CMakeFiles/dcdb_pusher.dir/rest_api.cpp.o"
  "CMakeFiles/dcdb_pusher.dir/rest_api.cpp.o.d"
  "CMakeFiles/dcdb_pusher.dir/sampler.cpp.o"
  "CMakeFiles/dcdb_pusher.dir/sampler.cpp.o.d"
  "CMakeFiles/dcdb_pusher.dir/sensor_base.cpp.o"
  "CMakeFiles/dcdb_pusher.dir/sensor_base.cpp.o.d"
  "CMakeFiles/dcdb_pusher.dir/sensor_group.cpp.o"
  "CMakeFiles/dcdb_pusher.dir/sensor_group.cpp.o.d"
  "libdcdb_pusher.a"
  "libdcdb_pusher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_pusher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
