# Empty dependencies file for dcdb_pusher.
# This may be replaced when dependencies are built.
