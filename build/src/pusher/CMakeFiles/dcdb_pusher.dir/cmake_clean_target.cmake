file(REMOVE_RECURSE
  "libdcdb_pusher.a"
)
