file(REMOVE_RECURSE
  "libdcdb_analytics.a"
)
