# Empty dependencies file for dcdb_analytics.
# This may be replaced when dependencies are built.
