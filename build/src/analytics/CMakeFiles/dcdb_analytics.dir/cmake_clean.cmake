file(REMOVE_RECURSE
  "CMakeFiles/dcdb_analytics.dir/operators.cpp.o"
  "CMakeFiles/dcdb_analytics.dir/operators.cpp.o.d"
  "CMakeFiles/dcdb_analytics.dir/pipeline.cpp.o"
  "CMakeFiles/dcdb_analytics.dir/pipeline.cpp.o.d"
  "libdcdb_analytics.a"
  "libdcdb_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
