file(REMOVE_RECURSE
  "CMakeFiles/dcdb_common.dir/bytebuf.cpp.o"
  "CMakeFiles/dcdb_common.dir/bytebuf.cpp.o.d"
  "CMakeFiles/dcdb_common.dir/clock.cpp.o"
  "CMakeFiles/dcdb_common.dir/clock.cpp.o.d"
  "CMakeFiles/dcdb_common.dir/config.cpp.o"
  "CMakeFiles/dcdb_common.dir/config.cpp.o.d"
  "CMakeFiles/dcdb_common.dir/fault.cpp.o"
  "CMakeFiles/dcdb_common.dir/fault.cpp.o.d"
  "CMakeFiles/dcdb_common.dir/logging.cpp.o"
  "CMakeFiles/dcdb_common.dir/logging.cpp.o.d"
  "CMakeFiles/dcdb_common.dir/proc_metrics.cpp.o"
  "CMakeFiles/dcdb_common.dir/proc_metrics.cpp.o.d"
  "CMakeFiles/dcdb_common.dir/string_utils.cpp.o"
  "CMakeFiles/dcdb_common.dir/string_utils.cpp.o.d"
  "CMakeFiles/dcdb_common.dir/units.cpp.o"
  "CMakeFiles/dcdb_common.dir/units.cpp.o.d"
  "libdcdb_common.a"
  "libdcdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
