# Empty compiler generated dependencies file for dcdb_common.
# This may be replaced when dependencies are built.
