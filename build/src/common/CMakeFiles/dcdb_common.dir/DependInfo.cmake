
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytebuf.cpp" "src/common/CMakeFiles/dcdb_common.dir/bytebuf.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/bytebuf.cpp.o.d"
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/dcdb_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/dcdb_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/config.cpp.o.d"
  "/root/repo/src/common/fault.cpp" "src/common/CMakeFiles/dcdb_common.dir/fault.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/fault.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/dcdb_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/proc_metrics.cpp" "src/common/CMakeFiles/dcdb_common.dir/proc_metrics.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/proc_metrics.cpp.o.d"
  "/root/repo/src/common/string_utils.cpp" "src/common/CMakeFiles/dcdb_common.dir/string_utils.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/string_utils.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/common/CMakeFiles/dcdb_common.dir/units.cpp.o" "gcc" "src/common/CMakeFiles/dcdb_common.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
