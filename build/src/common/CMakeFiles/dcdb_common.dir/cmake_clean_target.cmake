file(REMOVE_RECURSE
  "libdcdb_common.a"
)
