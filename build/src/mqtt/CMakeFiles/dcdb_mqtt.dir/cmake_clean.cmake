file(REMOVE_RECURSE
  "CMakeFiles/dcdb_mqtt.dir/broker.cpp.o"
  "CMakeFiles/dcdb_mqtt.dir/broker.cpp.o.d"
  "CMakeFiles/dcdb_mqtt.dir/client.cpp.o"
  "CMakeFiles/dcdb_mqtt.dir/client.cpp.o.d"
  "CMakeFiles/dcdb_mqtt.dir/packet.cpp.o"
  "CMakeFiles/dcdb_mqtt.dir/packet.cpp.o.d"
  "CMakeFiles/dcdb_mqtt.dir/topic.cpp.o"
  "CMakeFiles/dcdb_mqtt.dir/topic.cpp.o.d"
  "CMakeFiles/dcdb_mqtt.dir/transport.cpp.o"
  "CMakeFiles/dcdb_mqtt.dir/transport.cpp.o.d"
  "libdcdb_mqtt.a"
  "libdcdb_mqtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_mqtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
