file(REMOVE_RECURSE
  "libdcdb_mqtt.a"
)
