# Empty dependencies file for dcdb_mqtt.
# This may be replaced when dependencies are built.
