
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mqtt/broker.cpp" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/broker.cpp.o" "gcc" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/broker.cpp.o.d"
  "/root/repo/src/mqtt/client.cpp" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/client.cpp.o" "gcc" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/client.cpp.o.d"
  "/root/repo/src/mqtt/packet.cpp" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/packet.cpp.o" "gcc" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/packet.cpp.o.d"
  "/root/repo/src/mqtt/topic.cpp" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/topic.cpp.o" "gcc" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/topic.cpp.o.d"
  "/root/repo/src/mqtt/transport.cpp" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/transport.cpp.o" "gcc" "src/mqtt/CMakeFiles/dcdb_mqtt.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dcdb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
