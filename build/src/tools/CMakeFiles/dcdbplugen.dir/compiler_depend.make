# Empty compiler generated dependencies file for dcdbplugen.
# This may be replaced when dependencies are built.
