file(REMOVE_RECURSE
  "CMakeFiles/dcdbplugen.dir/plugen_main.cpp.o"
  "CMakeFiles/dcdbplugen.dir/plugen_main.cpp.o.d"
  "dcdbplugen"
  "dcdbplugen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdbplugen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
