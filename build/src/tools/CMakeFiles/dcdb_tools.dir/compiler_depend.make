# Empty compiler generated dependencies file for dcdb_tools.
# This may be replaced when dependencies are built.
