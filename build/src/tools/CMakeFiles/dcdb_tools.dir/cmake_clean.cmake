file(REMOVE_RECURSE
  "CMakeFiles/dcdb_tools.dir/csvimport_tool.cpp.o"
  "CMakeFiles/dcdb_tools.dir/csvimport_tool.cpp.o.d"
  "CMakeFiles/dcdb_tools.dir/dcdbconfig_tool.cpp.o"
  "CMakeFiles/dcdb_tools.dir/dcdbconfig_tool.cpp.o.d"
  "CMakeFiles/dcdb_tools.dir/dcdbquery_tool.cpp.o"
  "CMakeFiles/dcdb_tools.dir/dcdbquery_tool.cpp.o.d"
  "CMakeFiles/dcdb_tools.dir/local_db.cpp.o"
  "CMakeFiles/dcdb_tools.dir/local_db.cpp.o.d"
  "CMakeFiles/dcdb_tools.dir/plugen_tool.cpp.o"
  "CMakeFiles/dcdb_tools.dir/plugen_tool.cpp.o.d"
  "libdcdb_tools.a"
  "libdcdb_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
