
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/csvimport_tool.cpp" "src/tools/CMakeFiles/dcdb_tools.dir/csvimport_tool.cpp.o" "gcc" "src/tools/CMakeFiles/dcdb_tools.dir/csvimport_tool.cpp.o.d"
  "/root/repo/src/tools/dcdbconfig_tool.cpp" "src/tools/CMakeFiles/dcdb_tools.dir/dcdbconfig_tool.cpp.o" "gcc" "src/tools/CMakeFiles/dcdb_tools.dir/dcdbconfig_tool.cpp.o.d"
  "/root/repo/src/tools/dcdbquery_tool.cpp" "src/tools/CMakeFiles/dcdb_tools.dir/dcdbquery_tool.cpp.o" "gcc" "src/tools/CMakeFiles/dcdb_tools.dir/dcdbquery_tool.cpp.o.d"
  "/root/repo/src/tools/local_db.cpp" "src/tools/CMakeFiles/dcdb_tools.dir/local_db.cpp.o" "gcc" "src/tools/CMakeFiles/dcdb_tools.dir/local_db.cpp.o.d"
  "/root/repo/src/tools/plugen_tool.cpp" "src/tools/CMakeFiles/dcdb_tools.dir/plugen_tool.cpp.o" "gcc" "src/tools/CMakeFiles/dcdb_tools.dir/plugen_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/libdcdb/CMakeFiles/dcdb_libdcdb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/dcdb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/dcdb_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcdb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
