file(REMOVE_RECURSE
  "libdcdb_tools.a"
)
