file(REMOVE_RECURSE
  "CMakeFiles/csvimport.dir/csvimport_main.cpp.o"
  "CMakeFiles/csvimport.dir/csvimport_main.cpp.o.d"
  "csvimport"
  "csvimport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csvimport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
