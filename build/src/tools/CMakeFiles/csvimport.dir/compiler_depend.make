# Empty compiler generated dependencies file for csvimport.
# This may be replaced when dependencies are built.
