# Empty compiler generated dependencies file for dcdbpusher.
# This may be replaced when dependencies are built.
