file(REMOVE_RECURSE
  "CMakeFiles/dcdbpusher.dir/dcdbpusher_main.cpp.o"
  "CMakeFiles/dcdbpusher.dir/dcdbpusher_main.cpp.o.d"
  "dcdbpusher"
  "dcdbpusher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdbpusher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
