file(REMOVE_RECURSE
  "CMakeFiles/dcdbcollectagent.dir/dcdbcollectagent_main.cpp.o"
  "CMakeFiles/dcdbcollectagent.dir/dcdbcollectagent_main.cpp.o.d"
  "dcdbcollectagent"
  "dcdbcollectagent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdbcollectagent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
