# Empty compiler generated dependencies file for dcdbcollectagent.
# This may be replaced when dependencies are built.
