file(REMOVE_RECURSE
  "CMakeFiles/dcdbquery.dir/dcdbquery_main.cpp.o"
  "CMakeFiles/dcdbquery.dir/dcdbquery_main.cpp.o.d"
  "dcdbquery"
  "dcdbquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdbquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
