# Empty dependencies file for dcdbquery.
# This may be replaced when dependencies are built.
