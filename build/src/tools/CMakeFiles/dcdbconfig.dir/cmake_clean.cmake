file(REMOVE_RECURSE
  "CMakeFiles/dcdbconfig.dir/dcdbconfig_main.cpp.o"
  "CMakeFiles/dcdbconfig.dir/dcdbconfig_main.cpp.o.d"
  "dcdbconfig"
  "dcdbconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdbconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
