# Empty compiler generated dependencies file for dcdbconfig.
# This may be replaced when dependencies are built.
