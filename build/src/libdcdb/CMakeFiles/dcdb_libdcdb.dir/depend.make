# Empty dependencies file for dcdb_libdcdb.
# This may be replaced when dependencies are built.
