file(REMOVE_RECURSE
  "CMakeFiles/dcdb_libdcdb.dir/connection.cpp.o"
  "CMakeFiles/dcdb_libdcdb.dir/connection.cpp.o.d"
  "CMakeFiles/dcdb_libdcdb.dir/csv.cpp.o"
  "CMakeFiles/dcdb_libdcdb.dir/csv.cpp.o.d"
  "CMakeFiles/dcdb_libdcdb.dir/expression.cpp.o"
  "CMakeFiles/dcdb_libdcdb.dir/expression.cpp.o.d"
  "CMakeFiles/dcdb_libdcdb.dir/virtual_sensor.cpp.o"
  "CMakeFiles/dcdb_libdcdb.dir/virtual_sensor.cpp.o.d"
  "libdcdb_libdcdb.a"
  "libdcdb_libdcdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_libdcdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
