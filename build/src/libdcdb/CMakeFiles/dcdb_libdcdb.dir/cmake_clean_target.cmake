file(REMOVE_RECURSE
  "libdcdb_libdcdb.a"
)
