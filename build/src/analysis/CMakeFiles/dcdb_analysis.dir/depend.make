# Empty dependencies file for dcdb_analysis.
# This may be replaced when dependencies are built.
