file(REMOVE_RECURSE
  "CMakeFiles/dcdb_analysis.dir/kde.cpp.o"
  "CMakeFiles/dcdb_analysis.dir/kde.cpp.o.d"
  "CMakeFiles/dcdb_analysis.dir/regression.cpp.o"
  "CMakeFiles/dcdb_analysis.dir/regression.cpp.o.d"
  "CMakeFiles/dcdb_analysis.dir/stats.cpp.o"
  "CMakeFiles/dcdb_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/dcdb_analysis.dir/table.cpp.o"
  "CMakeFiles/dcdb_analysis.dir/table.cpp.o.d"
  "libdcdb_analysis.a"
  "libdcdb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
