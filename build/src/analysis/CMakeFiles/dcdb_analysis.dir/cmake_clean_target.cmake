file(REMOVE_RECURSE
  "libdcdb_analysis.a"
)
