# Empty compiler generated dependencies file for dcdb_core.
# This may be replaced when dependencies are built.
