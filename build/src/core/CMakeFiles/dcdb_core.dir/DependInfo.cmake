
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/dcdb_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/dcdb_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/metadata.cpp" "src/core/CMakeFiles/dcdb_core.dir/metadata.cpp.o" "gcc" "src/core/CMakeFiles/dcdb_core.dir/metadata.cpp.o.d"
  "/root/repo/src/core/payload.cpp" "src/core/CMakeFiles/dcdb_core.dir/payload.cpp.o" "gcc" "src/core/CMakeFiles/dcdb_core.dir/payload.cpp.o.d"
  "/root/repo/src/core/sensor_cache.cpp" "src/core/CMakeFiles/dcdb_core.dir/sensor_cache.cpp.o" "gcc" "src/core/CMakeFiles/dcdb_core.dir/sensor_cache.cpp.o.d"
  "/root/repo/src/core/sensor_id.cpp" "src/core/CMakeFiles/dcdb_core.dir/sensor_id.cpp.o" "gcc" "src/core/CMakeFiles/dcdb_core.dir/sensor_id.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/dcdb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/dcdb_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcdb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
