file(REMOVE_RECURSE
  "libdcdb_core.a"
)
