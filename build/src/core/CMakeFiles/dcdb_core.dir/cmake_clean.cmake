file(REMOVE_RECURSE
  "CMakeFiles/dcdb_core.dir/hierarchy.cpp.o"
  "CMakeFiles/dcdb_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/dcdb_core.dir/metadata.cpp.o"
  "CMakeFiles/dcdb_core.dir/metadata.cpp.o.d"
  "CMakeFiles/dcdb_core.dir/payload.cpp.o"
  "CMakeFiles/dcdb_core.dir/payload.cpp.o.d"
  "CMakeFiles/dcdb_core.dir/sensor_cache.cpp.o"
  "CMakeFiles/dcdb_core.dir/sensor_cache.cpp.o.d"
  "CMakeFiles/dcdb_core.dir/sensor_id.cpp.o"
  "CMakeFiles/dcdb_core.dir/sensor_id.cpp.o.d"
  "libdcdb_core.a"
  "libdcdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
