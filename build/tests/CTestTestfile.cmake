# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mqtt_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pusher_test[1]_include.cmake")
include("/root/repo/build/tests/plugins_test[1]_include.cmake")
include("/root/repo/build/tests/collectagent_test[1]_include.cmake")
include("/root/repo/build/tests/libdcdb_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
