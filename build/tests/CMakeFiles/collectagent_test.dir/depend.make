# Empty dependencies file for collectagent_test.
# This may be replaced when dependencies are built.
