file(REMOVE_RECURSE
  "CMakeFiles/collectagent_test.dir/collectagent_test.cpp.o"
  "CMakeFiles/collectagent_test.dir/collectagent_test.cpp.o.d"
  "collectagent_test"
  "collectagent_test.pdb"
  "collectagent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectagent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
