file(REMOVE_RECURSE
  "CMakeFiles/pusher_test.dir/pusher_test.cpp.o"
  "CMakeFiles/pusher_test.dir/pusher_test.cpp.o.d"
  "pusher_test"
  "pusher_test.pdb"
  "pusher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pusher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
