# Empty dependencies file for pusher_test.
# This may be replaced when dependencies are built.
