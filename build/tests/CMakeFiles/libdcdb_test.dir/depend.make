# Empty dependencies file for libdcdb_test.
# This may be replaced when dependencies are built.
