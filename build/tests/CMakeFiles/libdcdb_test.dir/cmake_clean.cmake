file(REMOVE_RECURSE
  "CMakeFiles/libdcdb_test.dir/libdcdb_test.cpp.o"
  "CMakeFiles/libdcdb_test.dir/libdcdb_test.cpp.o.d"
  "libdcdb_test"
  "libdcdb_test.pdb"
  "libdcdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libdcdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
