# Empty custom commands generated dependencies file for check-sanitize.
# This may be replaced when dependencies are built.
