file(REMOVE_RECURSE
  "CMakeFiles/check-sanitize"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/check-sanitize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
